package chase

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/dependency"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/storage"
	"repro/internal/value"
)

// The partitioned parallel concrete tgd phase.
//
// The s-t tgd bodies read only the normalized source, so the expensive
// part of the phase — enumerating every homomorphism of every body — is
// embarrassingly parallel: the source store is frozen (all lazy
// structures built, reads mutation-free) and each worker enumerates one
// contiguous shard of the candidate range via logic.ForEachIDsPart,
// whose shards concatenate to exactly the sequential enumeration order.
//
// Byte-identical output to the sequential chase is preserved by a
// two-level scheme keyed on whether a tgd invents nulls:
//
//   - Tgds without existentials fire entirely inside the workers: each
//     worker instantiates head rows (interning through the shared
//     thread-safe target interner), dedups them against a private target
//     store, and records the instantiated rows of every locally-new
//     firing. The merge replays the records in (tgd, worker-rank, shard)
//     order with Store.InsertIDs — the same order the sequential pass
//     fires in — so dedup outcomes, row numbering, fire counts, and
//     fact counts all coincide with the sequential pass: a record whose
//     facts an earlier-ranked worker already created inserts nothing,
//     exactly like the sequential Exists skip.
//
//   - Tgds with existentials must consult global state per firing (the
//     Exists check spans all prior firings, and null family ids must be
//     issued in sequential order), so workers only enumerate: they record
//     the universal head bindings per match, and the merge replays the
//     Exists check and the firing — fresh nulls included — sequentially
//     in rank order, which reproduces the sequential pass exactly.
//
// The egd phase parallelizes with the same freeze-and-shard scheme — its
// renormalization and merge-candidate scans fan out per round, with only
// the union-find replay and the rewrite sequential (see eparallel.go).
// Inputs below parallelCutoffFacts run sequentially throughout, where
// the freeze + fan-out overhead dominates.

// parallelCutoffFacts is the normalized-source size below which the tgd
// phase ignores Options.Workers and runs sequentially: freezing the
// source and spinning up workers costs more than enumerating a few
// hundred facts outright.
const parallelCutoffFacts = 128

// tgdPhase dispatches the s-t tgd pass to the sequential or the
// partitioned parallel implementation. Both are byte-identical; the
// choice only affects wall time.
func tgdPhase(ctx context.Context, src, tgt *instance.Concrete, cm *Compiled, gen *value.NullGen, opts *Options, stats *Stats) error {
	workers := opts.workers()
	if workers > 1 && len(cm.tgds) > 0 && src.Len() >= parallelCutoffFacts {
		return tgdPhaseParallel(ctx, src, tgt, cm, gen, opts, stats, workers)
	}
	stats.TGDWorkers = 1
	return tgdPhaseSeq(ctx, src, tgt, cm, gen, opts, stats)
}

// fireRec is one tgd firing recorded by a worker for the rank-ordered
// merge: for a tgd with existentials the universal head bindings (vals,
// in compiledTGD.headVars order) and the firing interval; for a tgd
// without, nothing — its instantiated head rows live in the worker's
// flat row arena instead.
type fireRec struct {
	t    interval.Interval
	vals []value.Value
}

// shardOut is everything one worker produced: per tgd, the number of
// homomorphisms enumerated, the firing records (existential tgds), and
// the flat arena of instantiated head rows (non-existential tgds; fixed
// stride per tgd, one stride per locally-new firing).
type shardOut struct {
	homs  []int
	fires [][]fireRec
	rows  [][]value.ID
	err   error
}

// headRowWidth returns the flat-arena stride of a tgd: the summed stored
// width of its head atoms (data positions plus the interval tail).
func headRowWidth(d *compiledTGD) int {
	w := 0
	for _, atom := range d.head {
		w += len(atom.Terms)
	}
	return w
}

// tgdPhaseParallel is the partitioned parallel s-t tgd pass. src must be
// owned by this run (it is frozen here); tgt must be empty.
func tgdPhaseParallel(ctx context.Context, src, tgt *instance.Concrete, cm *Compiled, gen *value.NullGen, opts *Options, stats *Stats, workers int) error {
	src.Store().Freeze()
	stats.TGDWorkers = workers
	tgtIn := tgt.Interner()

	outs := make([]shardOut, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			outs[w] = enumerateShard(ctx, src, cm, tgtIn, w, workers)
		}(w)
	}
	wg.Wait()
	for w := range outs {
		if err := outs[w].err; err != nil {
			return err
		}
	}

	// Merge in (tgd, worker-rank) order: shard concatenation is the
	// sequential enumeration order, so replaying records in this order
	// reproduces the sequential pass — same Exists outcomes, same null
	// family ids, same insertion (and therefore row-numbering) order.
	seen := 0
	for di := range cm.tgds {
		d := &cm.tgds[di]
		hasExist := len(d.exist) > 0
		width := headRowWidth(d)
		for w := 0; w < workers; w++ {
			out := &outs[w]
			stats.TGDHoms += out.homs[di]
			if hasExist {
				for ri := range out.fires[di] {
					rec := &out.fires[di][ri]
					seen++
					if seen&ctxCheckMask == 0 {
						if err := ctxErr(ctx); err != nil {
							return err
						}
					}
					bind := make(logic.Binding, len(d.headVars)+1)
					for i, name := range d.headVars {
						bind[name] = rec.vals[i]
					}
					bind[dependency.TemporalVar] = value.NewInterval(rec.t)
					if logic.Exists(tgt.Store(), d.head, bind) {
						continue
					}
					if err := fireTGD(tgt, d, bind, rec.t, gen, opts, stats); err != nil {
						return err
					}
					opts.recordFire(di)
				}
				continue
			}
			rows := out.rows[di]
			if len(rows) > 0 {
				if err := checkHeadSchema(tgt, d); err != nil {
					return err
				}
			}
			for base := 0; base < len(rows); base += width {
				seen++
				if seen&ctxCheckMask == 0 {
					if err := ctxErr(ctx); err != nil {
						return err
					}
				}
				added := false
				off := base
				for _, atom := range d.head {
					n := len(atom.Terms)
					if tgt.Store().InsertIDs(atom.Rel, rows[off:off+n]) {
						added = true
						stats.FactsCreated++
					}
					off += n
				}
				if added {
					stats.TGDFires++
					opts.recordFire(di)
					if opts.tracing() {
						t, _ := tgtIn.Resolve(rows[off-1]).Interval()
						opts.emit(EventTGDFire, d.d.Name, "fired at %v", t)
					}
				}
			}
		}
	}
	return nil
}

// checkHeadSchema mirrors the schema-level validation the sequential
// pass gets from instance.Insert, which the merge's InsertIDs fast path
// bypasses (the fact-level Validate runs in the workers, per firing).
// Like the sequential pass it only runs when the tgd actually fired.
func checkHeadSchema(tgt *instance.Concrete, d *compiledTGD) error {
	for _, atom := range d.head {
		if err := tgt.CheckRel(atom.Rel, len(atom.Terms)-1); err != nil {
			return fmt.Errorf("chase: tgd %s: %w", d.d.Name, err)
		}
	}
	return nil
}

// enumerateShard runs one worker: shard w of the homomorphism
// enumeration of every tgd body against the frozen normalized source.
// Matches of existential tgds are recorded as universal head bindings;
// matches of non-existential tgds are instantiated to head rows right
// here — interned through the shared thread-safe target interner and
// deduplicated against a worker-private target store, the worker-local
// analogue of the sequential Exists skip.
func enumerateShard(ctx context.Context, src *instance.Concrete, cm *Compiled, tgtIn *value.Interner, w, workers int) (out shardOut) {
	srcIn := src.Interner()
	out.homs = make([]int, len(cm.tgds))
	out.fires = make([][]fireRec, len(cm.tgds))
	out.rows = make([][]value.ID, len(cm.tgds))
	priv := storage.NewStoreWith(tgtIn)
	seen := 0
	var vbuf []value.Value
	var idbuf []value.ID
	for di := range cm.tgds {
		d := &cm.tgds[di]
		hasExist := len(d.exist) > 0
		logic.ForEachIDsPart(src.Store(), d.body, nil, w, workers, func(im *logic.IDMatch) bool {
			out.homs[di]++
			seen++
			if seen&ctxCheckMask == 0 {
				if out.err = ctxErr(ctx); out.err != nil {
					return false
				}
			}
			if !hasExist && len(d.head) == 0 {
				// Degenerate headless tgd: nothing to fire (the sequential
				// pass skips it through its always-true Exists check).
				return true
			}
			tid, ok := im.ID(dependency.TemporalVar)
			if !ok {
				out.err = fmt.Errorf("chase: tgd %s: temporal variable unbound", d.d.Name)
				return false
			}
			t, ok := srcIn.Resolve(tid).Interval()
			if !ok {
				out.err = fmt.Errorf("chase: tgd %s: temporal variable unbound", d.d.Name)
				return false
			}
			if hasExist {
				vals := make([]value.Value, len(d.headVars))
				for i, name := range d.headVars {
					id, ok := im.ID(name)
					if !ok {
						out.err = fmt.Errorf("chase: tgd %s: unbound head variable ?%s", d.d.Name, name)
						return false
					}
					vals[i] = srcIn.Resolve(id)
				}
				out.fires[di] = append(out.fires[di], fireRec{t: t, vals: vals})
				return true
			}
			// Instantiate the head rows now, through the same fact
			// construction and validation the sequential pass performs per
			// insert; keep them only when some row is new to this worker
			// (otherwise an earlier match of this shard already recorded
			// identical rows, and the merge replay of that earlier record
			// covers this one).
			flat := out.rows[di]
			base := len(flat)
			anyNew := false
			for _, atom := range d.head {
				n := len(atom.Terms) - 1
				args := make([]value.Value, n)
				for i := 0; i < n; i++ {
					term := atom.Terms[i]
					if term.IsVar {
						id, ok := im.ID(term.Name)
						if !ok {
							out.err = fmt.Errorf("chase: tgd %s: unbound head variable %v", d.d.Name, term)
							return false
						}
						args[i] = srcIn.Resolve(id)
					} else {
						args[i] = term.Val
					}
				}
				// NewC re-annotates annotated nulls to the firing interval
				// (a no-op on a normalized source) and Validate rejects the
				// same malformed heads the sequential insert path would.
				f := fact.NewC(atom.Rel, t, args...)
				if err := f.Validate(); err != nil {
					out.err = fmt.Errorf("chase: tgd %s: %w", d.d.Name, err)
					return false
				}
				vbuf = append(vbuf[:0], f.Args...)
				vbuf = append(vbuf, value.NewInterval(t))
				idbuf = tgtIn.InternAll(idbuf[:0], vbuf)
				if priv.InsertIDs(atom.Rel, idbuf) {
					anyNew = true
				}
				flat = append(flat, idbuf...)
			}
			if !anyNew {
				flat = flat[:base]
			}
			out.rows[di] = flat
			return true
		})
		if out.err != nil {
			return out
		}
	}
	return out
}
