package chase

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/paperex"
	"repro/internal/workload"
)

// equalStats compares chase stats modulo the worker counts (the only
// fields that legitimately differ between the sequential and parallel
// paths).
func equalStats(a, b Stats) bool {
	a.TGDWorkers, b.TGDWorkers = 0, 0
	a.EgdWorkers, b.EgdWorkers = 0, 0
	return a == b
}

// TestParallelCChaseEquivalence runs the benchmark scenarios in lockstep
// through the sequential chase and the partitioned parallel chase at
// several worker counts, asserting byte-identical solutions,
// byte-identical snapshots, and equal statistics.
func TestParallelCChaseEquivalence(t *testing.T) {
	type scenario struct {
		name string
		run  func(opts *Options) (*instance.Concrete, Stats, error)
		span interval.Time
	}
	emp := workload.Employment(workload.EmploymentConfig{Seed: 1, Persons: 60, JobsPerPerson: 4, SalaryCoverage: 0.7, Span: 120})
	med := workload.Medical(workload.MedicalConfig{Seed: 42, Patients: 60, Span: 80})
	taxi := workload.Taxi(workload.TaxiConfig{Seed: 7, Drivers: 50, Cabs: 20, Span: 60})
	scenarios := []scenario{
		{"employment", func(o *Options) (*instance.Concrete, Stats, error) {
			return Concrete(emp, paperex.EmploymentMapping(), o)
		}, 120},
		{"medical", func(o *Options) (*instance.Concrete, Stats, error) {
			return Concrete(med, workload.MedicalMapping(), o)
		}, 80},
		{"taxi", func(o *Options) (*instance.Concrete, Stats, error) {
			return Concrete(taxi, workload.TaxiMapping(), o)
		}, 60},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			seq, seqStats, err := sc.run(&Options{})
			if err != nil {
				t.Fatal(err)
			}
			if seqStats.TGDWorkers != 1 {
				t.Fatalf("sequential chase reports TGDWorkers = %d", seqStats.TGDWorkers)
			}
			want := seq.String()
			for _, workers := range []int{1, 2, 4, 8} {
				par, parStats, err := sc.run(&Options{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if workers > 1 && parStats.TGDWorkers != workers {
					t.Fatalf("workers=%d: parallel path did not engage (TGDWorkers=%d; input too small for the cutoff?)", workers, parStats.TGDWorkers)
				}
				if got := par.String(); got != want {
					t.Fatalf("workers=%d: solution differs from sequential chase\nseq:\n%s\npar:\n%s", workers, want, got)
				}
				if !equalStats(seqStats, parStats) {
					t.Fatalf("workers=%d: stats differ:\nseq: %+v\npar: %+v", workers, seqStats, parStats)
				}
				for _, at := range []interval.Time{0, sc.span / 3, sc.span / 2, sc.span - 1} {
					if a, b := seq.Snapshot(at).String(), par.Snapshot(at).String(); a != b {
						t.Fatalf("workers=%d: snapshot at %d differs:\nseq: %s\npar: %s", workers, at, a, b)
					}
				}
			}
		})
	}
}

// TestParallelCChaseEgdStress runs the egd-heavy stress workload (many
// merges, several rewrite rounds) in lockstep: the parallel tgd phase
// must hand the sequential egd phase a byte-identical target.
func TestParallelCChaseEgdStress(t *testing.T) {
	m := workload.EgdStressMapping(8)
	ic := workload.EgdStress(40, 8)
	seq, seqStats, err := Concrete(ic, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.String()
	for _, workers := range []int{2, 4, 8} {
		par, parStats, err := Concrete(ic, m, &Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := par.String(); got != want {
			t.Fatalf("workers=%d: solution differs from sequential chase", workers)
		}
		if !equalStats(seqStats, parStats) {
			t.Fatalf("workers=%d: stats differ:\nseq: %+v\npar: %+v", workers, seqStats, parStats)
		}
	}
}

// TestParallelCChaseRandomized drives random mappings and random source
// instances through both paths in lockstep — the fuzz net for the
// byte-identity contract (enumeration order, Exists outcomes, null
// numbering, merge order).
func TestParallelCChaseRandomized(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			m := workload.RandomMapping(r)
			ic := workload.RandomInstanceFor(r, m, 300)
			seq, seqStats, seqErr := Concrete(ic, m, nil)
			for _, workers := range []int{2, 4, 8} {
				par, parStats, parErr := Concrete(ic, m, &Options{Workers: workers})
				if (seqErr == nil) != (parErr == nil) {
					t.Fatalf("workers=%d: error mismatch: seq=%v par=%v", workers, seqErr, parErr)
				}
				if seqErr != nil {
					if seqErr.Error() != parErr.Error() {
						t.Fatalf("workers=%d: errors differ:\nseq: %v\npar: %v", workers, seqErr, parErr)
					}
					continue
				}
				if got, want := par.String(), seq.String(); got != want {
					t.Fatalf("workers=%d: solution differs from sequential chase\nseq:\n%s\npar:\n%s", workers, want, got)
				}
				if !equalStats(seqStats, parStats) {
					t.Fatalf("workers=%d: stats differ:\nseq: %+v\npar: %+v", workers, seqStats, parStats)
				}
			}
		})
	}
}

// TestParallelCutoffFallsBack asserts that tiny inputs ignore the worker
// count: below the cutoff the freeze + fan-out overhead cannot pay off.
func TestParallelCutoffFallsBack(t *testing.T) {
	m := workload.EgdStressMapping(2)
	ic := workload.EgdStress(2, 2) // far below parallelCutoffFacts
	if ic.Len() >= parallelCutoffFacts {
		t.Fatalf("test instance too large: %d facts", ic.Len())
	}
	_, stats, err := Concrete(ic, m, &Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TGDWorkers != 1 {
		t.Fatalf("tiny input used %d tgd workers, want sequential fallback", stats.TGDWorkers)
	}
	if stats.EgdWorkers > 1 {
		t.Fatalf("tiny input used %d egd workers, want sequential fallback", stats.EgdWorkers)
	}
}
