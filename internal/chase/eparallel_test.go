package chase

import (
	"fmt"
	"testing"

	"repro/internal/dependency"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/normalize"
	"repro/internal/paperex"
	"repro/internal/value"
	"repro/internal/workload"
)

// tgdOnlyTarget materializes the state the egd phase starts from: the
// target right after the tgd phase, produced by chasing a copy of the
// mapping with its egds stripped.
func tgdOnlyTarget(t testing.TB, m *dependency.Mapping, ic *instance.Concrete) *instance.Concrete {
	t.Helper()
	tgdOnly := &dependency.Mapping{Source: m.Source, Target: m.Target, TGDs: m.TGDs}
	tgt, _, err := Concrete(ic, tgdOnly, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

// TestParallelEgdPhaseEquivalence drives the standalone egd phase over
// pre-built tgd-phase targets in lockstep at several worker counts:
// byte-identical outputs, equal stats modulo the worker fields, the
// parallel path actually engaged, and the caller's target untouched
// (EgdPhase never mutates or freezes its input).
func TestParallelEgdPhaseEquivalence(t *testing.T) {
	type scenario struct {
		name string
		m    *dependency.Mapping
		ic   *instance.Concrete
	}
	scenarios := []scenario{
		{"egd-stress", workload.EgdStressMapping(8), workload.EgdStress(40, 8)},
		{"taxi", workload.TaxiMapping(), workload.Taxi(workload.TaxiConfig{Seed: 7, Drivers: 50, Cabs: 20, Span: 60})},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			tgt := tgdOnlyTarget(t, sc.m, sc.ic)
			if tgt.Len() < parallelCutoffFacts {
				t.Fatalf("target too small to engage the parallel path: %d facts", tgt.Len())
			}
			tgtBefore := tgt.String()
			seq, seqStats, err := EgdPhase(tgt, sc.m, &Options{})
			if err != nil {
				t.Fatal(err)
			}
			if seqStats.EgdWorkers != 1 {
				t.Fatalf("sequential egd phase reports EgdWorkers = %d", seqStats.EgdWorkers)
			}
			want := seq.String()
			for _, workers := range []int{1, 2, 4, 8} {
				par, parStats, err := EgdPhase(tgt, sc.m, &Options{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if workers > 1 && parStats.EgdWorkers != workers {
					t.Fatalf("workers=%d: parallel egd phase did not engage (EgdWorkers=%d)", workers, parStats.EgdWorkers)
				}
				if got := par.String(); got != want {
					t.Fatalf("workers=%d: egd phase output differs from sequential\nseq:\n%s\npar:\n%s", workers, want, got)
				}
				if !equalStats(seqStats, parStats) {
					t.Fatalf("workers=%d: stats differ:\nseq: %+v\npar: %+v", workers, seqStats, parStats)
				}
				if tgt.Frozen() {
					t.Fatalf("workers=%d: EgdPhase froze the caller's target", workers)
				}
				if got := tgt.String(); got != tgtBefore {
					t.Fatalf("workers=%d: EgdPhase mutated the caller's target", workers)
				}
			}
		})
	}
}

// TestParallelEgdStepwiseEquivalence pins the stepwise strategy: its
// scans re-search after every merge and stay sequential, but the
// renormalization still fans out — output must stay byte-identical.
func TestParallelEgdStepwiseEquivalence(t *testing.T) {
	m := workload.EgdStressMapping(6)
	ic := workload.EgdStress(30, 6)
	seq, seqStats, err := Concrete(ic, m, &Options{Egd: EgdStepwise})
	if err != nil {
		t.Fatal(err)
	}
	want := seq.String()
	for _, workers := range []int{2, 4, 8} {
		par, parStats, err := Concrete(ic, m, &Options{Egd: EgdStepwise, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := par.String(); got != want {
			t.Fatalf("workers=%d: stepwise solution differs from sequential", workers)
		}
		if !equalStats(seqStats, parStats) {
			t.Fatalf("workers=%d: stats differ:\nseq: %+v\npar: %+v", workers, seqStats, parStats)
		}
	}
}

// TestParallelEgdNaiveEquivalence pins the Naive normalization strategy,
// whose egd rounds skip renormalization but still scan in parallel.
func TestParallelEgdNaiveEquivalence(t *testing.T) {
	m := workload.EgdStressMapping(6)
	ic := workload.EgdStress(30, 6)
	seq, seqStats, err := Concrete(ic, m, &Options{Norm: normalize.StrategyNaive})
	if err != nil {
		t.Fatal(err)
	}
	want := seq.String()
	for _, workers := range []int{2, 4, 8} {
		par, parStats, err := Concrete(ic, m, &Options{Norm: normalize.StrategyNaive, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := par.String(); got != want {
			t.Fatalf("workers=%d: naive-strategy solution differs from sequential", workers)
		}
		if !equalStats(seqStats, parStats) {
			t.Fatalf("workers=%d: stats differ:\nseq: %+v\npar: %+v", workers, seqStats, parStats)
		}
	}
}

// snapshotStressSource builds a per-snapshot source for
// EgdStressMapping(k): the same group structure, interval-free.
func snapshotStressSource(groups, k int) *instance.Snapshot {
	src := instance.NewSnapshot()
	for g := 0; g < groups; g++ {
		name := fmt.Sprintf("p%d", g)
		for i := 0; i < k; i++ {
			src.Insert(fact.New(fmt.Sprintf("E%d", i), paperex.C(name), paperex.C("co")))
		}
	}
	return src
}

// TestParallelSnapshotEgdEquivalence runs the per-snapshot chase — the
// abstract chase's building block — in lockstep: the snapshot egd rounds
// also take Options.Workers.
func TestParallelSnapshotEgdEquivalence(t *testing.T) {
	m := workload.EgdStressMapping(8)
	src := snapshotStressSource(40, 8)
	iv := interval.MustNew(0, interval.Infinity)
	run := func(opts *Options) (*instance.Snapshot, Stats, error) {
		gen := &value.NullGen{}
		return Snapshot(src, m, func() value.Value { return gen.FreshAnn(iv) }, opts)
	}
	seq, seqStats, err := run(&Options{})
	if err != nil {
		t.Fatal(err)
	}
	if seqStats.EgdWorkers != 1 {
		t.Fatalf("sequential snapshot chase reports EgdWorkers = %d", seqStats.EgdWorkers)
	}
	want := seq.String()
	for _, workers := range []int{1, 2, 4, 8} {
		par, parStats, err := run(&Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if workers > 1 && parStats.EgdWorkers != workers {
			t.Fatalf("workers=%d: parallel snapshot egd rounds did not engage (EgdWorkers=%d)", workers, parStats.EgdWorkers)
		}
		if got := par.String(); got != want {
			t.Fatalf("workers=%d: snapshot chase differs from sequential\nseq:\n%s\npar:\n%s", workers, want, got)
		}
		if !equalStats(seqStats, parStats) {
			t.Fatalf("workers=%d: stats differ:\nseq: %+v\npar: %+v", workers, seqStats, parStats)
		}
	}
}
