package chase

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dependency"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/paperex"
	"repro/internal/storage"
	"repro/internal/value"
)

// fullRebuildReference replicates the pre-columnar egd rewrite: map
// every row of the store through the union-find and re-insert into a
// fresh store sharing the interner. The incremental in-place rewrite
// must produce exactly this instance.
func fullRebuildReference(st *storage.Store, uf *valueUF) *storage.Store {
	out := storage.NewStoreWith(st.Interner())
	st.EachRow(func(rel string, ids []value.ID) bool {
		nids := make([]value.ID, len(ids))
		for i, id := range ids {
			nids[i] = uf.canon(id)
		}
		out.InsertIDs(rel, nids)
		return true
	})
	return out
}

// TestIncrementalRewriteMatchesFullRebuild runs randomized union-find
// substitutions through both the incremental SubstituteIDs path and the
// full-rebuild reference and requires identical instances.
func TestIncrementalRewriteMatchesFullRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		st := storage.NewStore()
		in := st.Interner()
		var nulls []value.Value
		for i := 1; i <= 8; i++ {
			nulls = append(nulls, value.NewNull(uint64(i)))
		}
		mkVal := func() value.Value {
			if r.Intn(2) == 0 {
				return nulls[r.Intn(len(nulls))]
			}
			return value.NewConst(fmt.Sprintf("c%d", r.Intn(5)))
		}
		for i := 0; i < 5+r.Intn(20); i++ {
			st.Insert("R", []value.Value{mkVal(), mkVal()})
			if r.Intn(3) == 0 {
				st.Insert("S", []value.Value{mkVal()})
			}
		}
		// Warm an index so maintenance is exercised too.
		st.Rel("R").Candidates(0, nulls[0])

		uf := newValueUF(in)
		for m := 0; m < 1+r.Intn(4); m++ {
			a, b := mkVal(), mkVal()
			ida, ok1 := in.Lookup(a)
			idb, ok2 := in.Lookup(b)
			if !ok1 || !ok2 {
				continue
			}
			ca, cb := uf.canon(ida), uf.canon(idb)
			if ca == cb {
				continue
			}
			if err := uf.union(ca, cb); err != nil {
				continue // constant clash: skip this merge
			}
		}
		want := fullRebuildReference(st, uf)
		st.SubstituteIDs(uf.substituted(), uf.canon)
		if got, w := st.String(), want.String(); got != w {
			t.Fatalf("trial %d: incremental rewrite diverges from full rebuild:\n got:\n%s\nwant:\n%s", trial, got, w)
		}
		if st.Size() != want.Size() {
			t.Fatalf("trial %d: size %d vs rebuild %d", trial, st.Size(), want.Size())
		}
	}
}

// TestChaseIncrementalRewriteSemantics runs full concrete chases on an
// egd-heavy workload and cross-checks that the batch result (built on
// incremental rewrites) matches the stepwise result and satisfies the
// mapping — the instance-level regression guard for the in-place path.
func TestChaseIncrementalRewriteSemantics(t *testing.T) {
	m := paperex.EmploymentMapping()
	iv, c := paperex.Iv, paperex.C
	ic := instance.NewConcrete(m.Source)
	ic.MustInsert(fact.NewC("E", iv(2010, 2020), c("Ada"), c("IBM")))
	ic.MustInsert(fact.NewC("E", iv(2012, 2018), c("Bob"), c("IBM")))
	ic.MustInsert(fact.NewC("S", iv(2011, 2015), c("Ada"), c("18k")))
	ic.MustInsert(fact.NewC("S", iv(2013, 2017), c("Bob"), c("13k")))

	batch, bs, err := Concrete(ic, m, &Options{Egd: EgdBatch})
	if err != nil {
		t.Fatal(err)
	}
	step, _, err := Concrete(ic, m, &Options{Egd: EgdStepwise})
	if err != nil {
		t.Fatal(err)
	}
	if !batch.Abstract().EqualTo(step.Abstract()) {
		t.Fatalf("batch (incremental rewrites) and stepwise disagree:\n%s\nvs\n%s", batch, step)
	}
	if bs.EgdMerges > 0 && bs.RowsRewritten == 0 {
		t.Fatalf("merges happened (%d) but no rows were rewritten", bs.EgdMerges)
	}
}

// TestRewriteConcreteIsIncremental is the acceptance check that
// rewriteConcrete no longer rebuilds the whole store per egd round: on a
// target where only a few facts contain the merged null, the touched-row
// count must equal those few facts, not the instance size.
func TestRewriteConcreteIsIncremental(t *testing.T) {
	// One egd over P equates the second attribute of co-timed P facts.
	// The target holds 2 violating P facts plus many unrelated Q facts
	// that must never be touched by the rewrite.
	mp := &dependency.Mapping{
		TGDs: []dependency.TGD{},
		EGDs: []dependency.EGD{{
			Name: "same-v",
			Body: logic.Conjunction{
				logic.NewAtom("P", logic.Var("k"), logic.Var("v1")),
				logic.NewAtom("P", logic.Var("k"), logic.Var("v2")),
			},
			X1: "v1", X2: "v2",
		}},
	}
	tgt := instance.NewConcrete(nil)
	span := interval.MustNew(0, 10)
	gen := &value.NullGen{}
	n1, n2 := gen.FreshAnn(span), gen.FreshAnn(span)
	tgt.MustInsert(fact.CFact{Rel: "P", T: span, Args: []value.Value{value.NewConst("k"), n1}})
	tgt.MustInsert(fact.CFact{Rel: "P", T: span, Args: []value.Value{value.NewConst("k"), n2}})
	bystanders := 400
	for i := 0; i < bystanders; i++ {
		tgt.MustInsert(fact.CFact{Rel: "Q", T: span, Args: []value.Value{value.NewConst(fmt.Sprintf("q%d", i))}})
	}

	out, stats, err := EgdPhase(tgt, mp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EgdMerges != 1 {
		t.Fatalf("EgdMerges = %d, want 1", stats.EgdMerges)
	}
	// Only the row holding the non-canonical null is rewritten; the
	// canonical one and all 400 bystanders stay untouched.
	if stats.RowsRewritten != 1 {
		t.Fatalf("RowsRewritten = %d, want 1 (incremental), not ~%d (full rebuild)", stats.RowsRewritten, bystanders+2)
	}
	if out.Len() != bystanders+1 {
		t.Fatalf("collapsed instance has %d facts, want %d", out.Len(), bystanders+1)
	}
	// The caller's target must not have been mutated by the egd phase.
	if tgt.Len() != bystanders+2 {
		t.Fatalf("EgdPhase mutated its input: %d facts, want %d", tgt.Len(), bystanders+2)
	}
}
