package chase

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"repro/internal/dependency"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/normalize"
	"repro/internal/value"
)

// The semi-naive incremental (delta) c-chase.
//
// A full chase run retains its intermediates in a BaseState: the frozen
// raw source, the frozen normalized source, the frozen pre-egd target,
// the frozen solution, the null-family position, and the per-tgd firing
// counts. ConcreteDelta then chases "base source + a few new facts"
// without redoing the base work:
//
//   - the new facts normalize incrementally (normalize.DeltaSourceNormalize),
//     reusing the retained base fragmentation verbatim;
//   - tgds fire only on homomorphisms with at least one body atom bound
//     in the delta (logic.ForEachIDsDelta), against a clone of the
//     retained pre-egd target, with fresh nulls numbered as the
//     continuation of the base run (value.NullGenAt);
//   - egd rounds scan only homomorphisms touching dirty rows, rewriting
//     in place; merges that reach into retained base rows are allowed up
//     to Options.DeltaBaseRowLimit rewritten base rows.
//
// The contract is byte-identity: the returned solution equals — fact
// for fact, null family for null family — the solution of a full chase
// over the base source followed by the delta facts. The fast path only
// runs when that equality is provable from the retained state; a
// pre-flight guard or an in-flight hazard (listed at deltaSafe and in
// the phase loops below) falls back to exactly that full re-chase,
// reported in Stats.FallbackFullChase. Either way the result is correct
// and a fresh BaseState is returned, so delta runs chain.
type BaseState struct {
	cm         *Compiled
	src        *instance.Concrete // frozen raw source of the run
	nsrc       *instance.Concrete // frozen normalized source
	preEgd     *instance.Concrete // frozen post-tgd/pre-egd target; nil when the mapping has no egds
	sol        *instance.Concrete // frozen solution, before any coalescing
	genLast    uint64             // null-family position after the run
	fires      []int              // per-tgd firing counts of the run
	norm       normalize.Strategy
	egdMode    EgdStrategy
	genPrivate bool // the run used a private null generator (Options.Gen was nil)
}

// Solution returns the retained frozen solution (pre-coalesce). Shared;
// do not mutate.
func (b *BaseState) Solution() *instance.Concrete { return b.sol }

// Source returns the retained frozen raw source. Shared; do not mutate.
func (b *BaseState) Source() *instance.Concrete { return b.src }

// Compiled returns the mapping the state was chased under.
func (b *BaseState) Compiled() *Compiled { return b.cm }

// withFireCounts returns a copy of the options recording per-tgd fires
// into fc. The receiver may be nil.
func (o *Options) withFireCounts(fc []int) *Options {
	var c Options
	if o != nil {
		c = *o
	}
	c.FireCounts = fc
	return &c
}

// ConcreteCompiledBase is ConcreteCompiled, additionally retaining the
// run's intermediates for later incremental runs. ic is frozen here (it
// is retained inside the BaseState); the returned state is immutable
// and safe to share. Options.FireCounts is managed internally and
// ignored if set by the caller.
func ConcreteCompiledBase(ic *instance.Concrete, cm *Compiled, opts *Options) (*instance.Concrete, Stats, *BaseState, error) {
	var stats Stats
	gen := opts.gen()
	ctx := opts.ctx()
	if err := ctxErr(ctx); err != nil {
		return nil, stats, nil, err
	}

	ic.Freeze()

	src, err := normalize.ForMappingCtx(ctx, ic, cm.tgdBodies, opts.norm())
	if err != nil {
		return nil, stats, nil, err
	}
	stats.NormalizeRuns++
	stats.NormalizedSourceFacts = src.Len()
	opts.emit(EventNormalize, "", "source normalized (%s): %d → %d facts", opts.norm(), ic.Len(), src.Len())
	src.Freeze()

	fires := make([]int, len(cm.tgds))
	ropts := opts.withFireCounts(fires)

	tgt := instance.NewConcreteWith(cm.m.Target, opts.interner(src.Interner()))
	if err := tgdPhase(ctx, src, tgt, cm, gen, ropts, &stats); err != nil {
		return nil, stats, nil, err
	}

	var preEgd *instance.Concrete
	if len(cm.egds) > 0 {
		preEgd = tgt.Clone()
		preEgd.Freeze()
	}

	sol, err := concreteEgds(tgt, cm, ropts, &stats, true)
	if err != nil {
		return nil, stats, nil, err
	}
	sol.Freeze()

	base := &BaseState{
		cm:         cm,
		src:        ic,
		nsrc:       src,
		preEgd:     preEgd,
		sol:        sol,
		genLast:    gen.Last(),
		fires:      fires,
		norm:       opts.norm(),
		egdMode:    opts.egd(),
		genPrivate: opts == nil || opts.Gen == nil,
	}
	out := sol
	if opts.coalesce() {
		out = sol.Coalesce()
	}
	return out, stats, base, nil
}

// deltaSafe reports whether the incremental fast path is even
// attemptable: both runs on Smart normalization and batch egds, private
// null generators (an external generator's position cannot be
// snapshotted safely), and no trace hook (the delta run cannot replay
// the full run's event stream). Anything else re-chases from scratch —
// still correct, just not incremental.
func deltaSafe(base *BaseState, opts *Options) bool {
	return base.norm == normalize.StrategySmart && opts.norm() == normalize.StrategySmart &&
		base.egdMode == EgdBatch && opts.egd() == EgdBatch &&
		base.genPrivate && (opts == nil || opts.Gen == nil) &&
		!opts.tracing()
}

// ConcreteDelta chases the base run's source extended by the facts of
// delta, reusing the retained BaseState where provably byte-identical
// and re-chasing the combined source from scratch otherwise
// (Stats.FallbackFullChase). The returned solution equals — including
// null family ids — ConcreteCompiled over a source built by inserting
// the base facts and then the delta facts, and the returned BaseState
// retains the combined run so further deltas chain. base and delta are
// never mutated; delta facts already present in the base source are
// ignored (Stats.DeltaFacts counts the genuinely new ones).
func ConcreteDelta(base *BaseState, delta *instance.Concrete, opts *Options) (*instance.Concrete, Stats, *BaseState, error) {
	var stats Stats
	cm := base.cm
	ctx := opts.ctx()
	if err := ctxErr(ctx); err != nil {
		return nil, stats, nil, err
	}

	// Extend a clone of the retained source; the raw delta frontier is
	// the set of appended rows.
	combined := base.src.Clone()
	rawDelta := logic.NewDeltaSet()
	var insErr error
	delta.EachFact(func(f fact.CFact) bool {
		added, err := combined.Insert(f)
		if err != nil {
			insErr = fmt.Errorf("chase: delta fact %v: %w", f, err)
			return false
		}
		if added {
			rawDelta.Add(f.Rel, combined.Store().Rel(f.Rel).NumRows()-1)
			stats.DeltaFacts++
		}
		return true
	})
	if insErr != nil {
		return nil, stats, nil, insErr
	}
	if stats.DeltaFacts == 0 {
		// Nothing new: the retained solution is the answer.
		out := base.sol
		if opts.coalesce() {
			out = out.Coalesce()
		}
		return out, stats, base, nil
	}
	combined.Freeze()

	if !deltaSafe(base, opts) {
		return deltaFallback(combined, cm, opts, stats)
	}

	workers := opts.workers()

	// Incremental source normalization: the retained base fragmentation
	// plus the delta rows fragmented on their own match components. A
	// surviving match set mixing base and delta rows would refragment
	// base facts — fall back.
	normW := 1
	if workers > 1 && rawDelta.Len() >= parallelCutoffFacts {
		normW = workers
	}
	nsrc, frontier, ok, err := normalize.DeltaSourceNormalize(ctx, combined, base.nsrc, cm.tgdBodies, rawDelta, normW)
	if err != nil {
		return nil, stats, nil, err
	}
	if !ok {
		return deltaFallback(combined, cm, opts, stats)
	}
	stats.NormalizeRuns++
	stats.NormalizedSourceFacts = nsrc.Len()
	nsrc.Freeze()

	// Firing-order hazards decidable before firing anything:
	//
	//   - L is the last existential tgd the base run fired. A delta
	//     firing that creates nulls at an earlier tgd index would have
	//     its family ids interleaved before later base families in the
	//     full run, while the continuation generator numbers them after
	//     — checked per firing below.
	//   - An existential tgd the base fired ≥2 times whose multi-atom
	//     body gained delta rows may enumerate its base homomorphisms in
	//     a different order in the full run (the adaptive join order
	//     keys on posting sizes), permuting null ids.
	//   - A delta firing into a relation that appears in the head of a
	//     later existential tgd the base run fired could flip that tgd's
	//     Exists outcome for a base homomorphism in the full run,
	//     suppressing a base firing — precomputed as existHazard and
	//     checked per firing below.
	L := -1
	for i := range cm.tgds {
		if len(cm.tgds[i].exist) > 0 && base.fires[i] > 0 {
			L = i
		}
	}
	frontRels := make(map[string]bool)
	for _, rel := range frontier.Relations() {
		frontRels[rel] = true
	}
	for i := range cm.tgds {
		d := &cm.tgds[i]
		if len(d.exist) > 0 && base.fires[i] >= 2 && len(d.body) >= 2 {
			for _, a := range d.body {
				if frontRels[a.Rel] {
					return deltaFallback(combined, cm, opts, stats)
				}
			}
		}
	}
	existHazard := make([]map[string]bool, len(cm.tgds))
	suffix := make(map[string]bool)
	for i := len(cm.tgds) - 1; i >= 0; i-- {
		existHazard[i] = suffix
		d := &cm.tgds[i]
		if len(d.exist) > 0 && base.fires[i] > 0 {
			next := make(map[string]bool, len(suffix)+len(d.head))
			for rel := range suffix {
				next[rel] = true
			}
			for _, atom := range d.head {
				next[atom.Rel] = true
			}
			suffix = next
		}
	}

	// Delta tgd phase against a clone of the retained pre-egd target
	// (the solution itself when the mapping has no egds), continuing the
	// base run's null numbering.
	var tgtc *instance.Concrete
	if base.preEgd != nil {
		tgtc = base.preEgd.Clone()
	} else {
		tgtc = base.sol.Clone()
	}
	gen := value.NullGenAt(base.genLast)
	fires := slices.Clone(base.fires)
	bounds := make(map[string]int)
	for _, rel := range tgtc.Store().Relations() {
		bounds[rel] = tgtc.Store().Rel(rel).NumRows()
	}

	scanW := 1
	if workers > 1 && frontier.Len() >= parallelCutoffFacts {
		scanW = workers
	}
	for di := range cm.tgds {
		d := &cm.tgds[di]
		if err := ctxErr(ctx); err != nil {
			return nil, stats, nil, err
		}
		homs, err := collectDeltaHoms(ctx, nsrc, d.body, frontier, scanW, d.d.Name)
		if err != nil {
			return nil, stats, nil, err
		}
		stats.TGDHoms += len(homs)
		hasExist := len(d.exist) > 0
		firedHere := 0
		for hi := range homs {
			h := &homs[hi]
			if hi&ctxCheckMask == 0 {
				if err := ctxErr(ctx); err != nil {
					return nil, stats, nil, err
				}
			}
			if logic.Exists(tgtc.Store(), d.head, h.bind) {
				if hasExist {
					// The extension may pre-exist via base facts of later
					// tgds the full run has not fired yet at this point:
					// whether the full run fires is undecidable here.
					return deltaFallback(combined, cm, opts, stats)
				}
				continue
			}
			if hasExist {
				if len(d.body) >= 2 && (base.fires[di] >= 1 || firedHere >= 1) {
					// Base and delta firings of a multi-atom body interleave
					// under the full run's adaptive join order.
					return deltaFallback(combined, cm, opts, stats)
				}
				if di < L {
					return deltaFallback(combined, cm, opts, stats)
				}
			}
			for _, atom := range d.head {
				if existHazard[di][atom.Rel] {
					return deltaFallback(combined, cm, opts, stats)
				}
			}
			if err := fireTGD(tgtc, d, h.bind, h.t, gen, opts, &stats); err != nil {
				return nil, stats, nil, err
			}
			stats.DeltaFires++
			fires[di]++
			firedHere++
		}
	}

	var sol *instance.Concrete
	if len(cm.egds) == 0 {
		sol = tgtc
	} else {
		out, fellBack, err := deltaEgds(ctx, base, cm, tgtc, bounds, opts, &stats)
		if err != nil {
			return nil, stats, nil, err
		}
		if fellBack {
			return deltaFallback(combined, cm, opts, stats)
		}
		sol = out
	}

	sol.Freeze()
	var preEgd *instance.Concrete
	if len(cm.egds) > 0 {
		tgtc.Freeze()
		preEgd = tgtc
	}
	next := &BaseState{
		cm:         cm,
		src:        combined,
		nsrc:       nsrc,
		preEgd:     preEgd,
		sol:        sol,
		genLast:    gen.Last(),
		fires:      fires,
		norm:       base.norm,
		egdMode:    base.egdMode,
		genPrivate: true,
	}
	res := sol
	if opts.coalesce() {
		res = sol.Coalesce()
	}
	return res, stats, next, nil
}

// deltaFallback abandons the incremental path and chases the combined
// source from scratch, preserving the delta accounting.
func deltaFallback(combined *instance.Concrete, cm *Compiled, opts *Options, stats Stats) (*instance.Concrete, Stats, *BaseState, error) {
	out, st, next, err := ConcreteCompiledBase(combined, cm, opts)
	st.DeltaFacts = stats.DeltaFacts
	st.FallbackFullChase = true
	return out, st, next, err
}

// deltaEgds runs the incremental egd rounds: the new target rows seed
// the dirty set over a clone of the retained solution, each round
// checks that renormalization would leave the dirty frontier untouched
// (all delta-involving egd-body match sets interval-aligned), scans
// only dirty-involving homomorphisms for merge candidates, and rewrites
// in place, feeding rewritten rows — base rows included — back into the
// dirty set. It reports fellBack=true when a round breaks an invariant
// the retained state depends on (misaligned match set) or the base
// rewrite budget is exhausted.
func deltaEgds(ctx context.Context, base *BaseState, cm *Compiled, tgtc *instance.Concrete, bounds map[string]int, opts *Options, stats *Stats) (*instance.Concrete, bool, error) {
	out := base.sol.Clone()
	dirty := logic.NewDeltaSet()
	baseRows := make(map[string]int)
	for _, rel := range out.Store().Relations() {
		baseRows[rel] = out.Store().Rel(rel).NumRows()
	}
	for _, rel := range tgtc.Store().Relations() {
		r := tgtc.Store().Rel(rel)
		for row := bounds[rel]; row < r.NumRows(); row++ {
			added, err := out.Insert(tgtc.FactAt(rel, row))
			if err != nil {
				return nil, false, err
			}
			if added {
				dirty.Add(rel, out.Store().Rel(rel).NumRows()-1)
			}
		}
	}
	if dirty.Len() == 0 {
		return out, false, nil
	}

	limit := opts.deltaBaseRowLimit()
	workers := opts.workers()
	if stats.EgdWorkers == 0 {
		stats.EgdWorkers = 1
	}
	in := out.Interner()
	rewrittenBase := 0
	for {
		stats.EgdRounds++
		if err := ctxErr(ctx); err != nil {
			return nil, false, err
		}
		scanW := 1
		if workers > 1 && dirty.Len() >= parallelCutoffFacts {
			scanW = workers
			out.Store().Freeze()
			if scanW > stats.EgdWorkers {
				stats.EgdWorkers = scanW
			}
		}
		// Guard: renormalizing w.r.t. the egd bodies must not fragment
		// anything on the dirty frontier, or the retained base
		// fragmentation no longer matches what a full run would produce.
		aligned, err := normalize.DeltaAligned(ctx, out, cm.egdBodies, dirty, scanW)
		if err != nil {
			return nil, false, err
		}
		if !aligned {
			return nil, true, nil
		}

		uf := newValueUF(in)
		seen := 0
		for di := range cm.egds {
			d := &cm.egds[di]
			pairs, err := collectDeltaPairs(ctx, out, d.body, d.d.X1, d.d.X2, dirty, scanW)
			if err != nil {
				return nil, false, err
			}
			for i := 0; i < len(pairs); i += 2 {
				seen++
				if seen&ctxCheckMask == 0 {
					if err := ctxErr(ctx); err != nil {
						return nil, false, err
					}
				}
				v1, v2 := uf.canon(pairs[i]), uf.canon(pairs[i+1])
				if v1 == v2 {
					continue
				}
				if err := uf.union(v1, v2); err != nil {
					opts.emit(EventEgdFail, d.d.Name, "constants clash: %v ≠ %v", in.Resolve(v1), in.Resolve(v2))
					return nil, false, &FailError{Dep: d.d.Name, V1: in.Resolve(v1), V2: in.Resolve(v2)}
				}
				stats.EgdMerges++
			}
		}
		if !uf.dirty() {
			return out, false, nil
		}
		if out.Frozen() {
			out = out.Clone()
		}
		n := out.Store().SubstituteIDsTouched(uf.substituted(), uf.canon, func(rel string, row int) {
			dirty.Add(rel, row)
			if row < baseRows[rel] {
				rewrittenBase++
			}
		})
		stats.RowsRewritten += n
		stats.BaseRowsRewritten = rewrittenBase
		if limit >= 0 && rewrittenBase > limit {
			return nil, true, nil
		}
	}
}

// deltaHom is one collected delta-involving tgd-body homomorphism: the
// resolved variable bindings and the firing interval.
type deltaHom struct {
	bind logic.Binding
	t    interval.Interval
}

// collectDeltaHoms enumerates the delta-involving homomorphisms of conj
// into ic (which must be frozen when workers > 1) and materializes
// their bindings, in the deterministic stage-major order of
// logic.ForEachIDsDelta — shards merge in (stage, worker-rank) order.
func collectDeltaHoms(ctx context.Context, ic *instance.Concrete, conj logic.Conjunction, frontier *logic.DeltaSet, workers int, dname string) ([]deltaHom, error) {
	in := ic.Interner()
	build := func(m *logic.IDMatch) (deltaHom, error) {
		bind := make(logic.Binding, len(m.Vars()))
		for i, name := range m.Vars() {
			bind[name] = in.Resolve(m.Slots()[i])
		}
		tv, ok := bind[dependency.TemporalVar]
		if !ok || !tv.IsInterval() {
			return deltaHom{}, fmt.Errorf("chase: tgd %s: temporal variable unbound", dname)
		}
		t, _ := tv.Interval()
		return deltaHom{bind: bind, t: t}, nil
	}
	if workers <= 1 {
		var homs []deltaHom
		var stepErr error
		seen := 0
		logic.ForEachIDsDelta(ic.Store(), conj, frontier, func(stage int, m *logic.IDMatch) bool {
			seen++
			if seen&ctxCheckMask == 0 {
				if stepErr = ctxErr(ctx); stepErr != nil {
					return false
				}
			}
			h, err := build(m)
			if err != nil {
				stepErr = err
				return false
			}
			homs = append(homs, h)
			return true
		})
		return homs, stepErr
	}

	type shard struct {
		perStage [][]deltaHom
		err      error
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := &shards[w]
			s.perStage = make([][]deltaHom, len(conj))
			seen := 0
			logic.ForEachIDsDeltaPart(ic.Store(), conj, frontier, w, workers, func(stage int, m *logic.IDMatch) bool {
				seen++
				if seen&ctxCheckMask == 0 {
					if s.err = ctxErr(ctx); s.err != nil {
						return false
					}
				}
				h, err := build(m)
				if err != nil {
					s.err = err
					return false
				}
				s.perStage[stage] = append(s.perStage[stage], h)
				return true
			})
		}(w)
	}
	wg.Wait()
	var homs []deltaHom
	for w := range shards {
		if err := shards[w].err; err != nil {
			return nil, err
		}
	}
	for stage := 0; stage < len(conj); stage++ {
		for w := range shards {
			homs = append(homs, shards[w].perStage[stage]...)
		}
	}
	return homs, nil
}

// collectDeltaPairs enumerates the delta-involving homomorphisms of an
// egd body over ic (frozen when workers > 1) and returns the flat
// (x1, x2) ID pairs in deterministic (stage, worker-rank) order.
func collectDeltaPairs(ctx context.Context, ic *instance.Concrete, body logic.Conjunction, x1, x2 string, dirty *logic.DeltaSet, workers int) ([]value.ID, error) {
	if workers <= 1 {
		var pairs []value.ID
		var stepErr error
		seen := 0
		logic.ForEachIDsDelta(ic.Store(), body, dirty, func(stage int, m *logic.IDMatch) bool {
			seen++
			if seen&ctxCheckMask == 0 {
				if stepErr = ctxErr(ctx); stepErr != nil {
					return false
				}
			}
			b1, _ := m.ID(x1)
			b2, _ := m.ID(x2)
			pairs = append(pairs, b1, b2)
			return true
		})
		return pairs, stepErr
	}
	type shard struct {
		perStage [][]value.ID
		err      error
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := &shards[w]
			s.perStage = make([][]value.ID, len(body))
			seen := 0
			logic.ForEachIDsDeltaPart(ic.Store(), body, dirty, w, workers, func(stage int, m *logic.IDMatch) bool {
				seen++
				if seen&ctxCheckMask == 0 {
					if s.err = ctxErr(ctx); s.err != nil {
						return false
					}
				}
				b1, _ := m.ID(x1)
				b2, _ := m.ID(x2)
				s.perStage[stage] = append(s.perStage[stage], b1, b2)
				return true
			})
		}(w)
	}
	wg.Wait()
	var pairs []value.ID
	for w := range shards {
		if err := shards[w].err; err != nil {
			return nil, err
		}
	}
	for stage := 0; stage < len(body); stage++ {
		for w := range shards {
			pairs = append(pairs, shards[w].perStage[stage]...)
		}
	}
	return pairs, nil
}
