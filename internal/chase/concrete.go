package chase

import (
	"context"
	"fmt"

	"repro/internal/dependency"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/normalize"
	"repro/internal/value"
)

// Concrete runs the c-chase of Definition 16 / §4.3 on a concrete source
// instance:
//
//  1. normalize Ic w.r.t. the left-hand sides of Σst;
//  2. apply all s-t tgd c-chase steps, inventing a fresh
//     interval-annotated null N^h(t) per existential variable per firing;
//  3. normalize the target w.r.t. the left-hand sides of Σeg;
//  4. apply egd c-chase steps to a fixpoint, failing when two distinct
//     constants are equated.
//
// With the Smart normalization strategy, step 3 is repeated after every
// egd rewrite round: identifying a null with a constant can reveal new
// egd homomorphisms between facts whose intervals properly overlap,
// which would otherwise escape the empty intersection property. The
// Naive strategy fragments on the global endpoint partition once, which
// is stable under egd rewrites (intervals never change), so no
// renormalization is needed — the classic time/size trade-off of §4.2.
//
// On success the returned instance is a concrete solution; ⟦Jc⟧ is a
// universal solution for ⟦Ic⟧ (Theorem 19). On failure the error wraps
// ErrNoSolution. When Options.Ctx is canceled mid-run the error wraps
// the context's error and ic is left untouched (the chase never writes
// to its source).
//
// Concrete compiles the mapping per call; callers that chase one mapping
// against many sources should CompileMapping once and use
// ConcreteCompiled (the tdx facade does).
func Concrete(ic *instance.Concrete, m *dependency.Mapping, opts *Options) (*instance.Concrete, Stats, error) {
	cm, err := CompileMapping(m)
	if err != nil {
		return nil, Stats{}, err
	}
	return ConcreteCompiled(ic, cm, opts)
}

// ConcreteCompiled is Concrete against a pre-compiled mapping: the
// compile-once/run-many entry point. cm is read-only here, so any number
// of runs (including concurrent ones) may share it.
func ConcreteCompiled(ic *instance.Concrete, cm *Compiled, opts *Options) (*instance.Concrete, Stats, error) {
	var stats Stats
	gen := opts.gen()
	ctx := opts.ctx()
	if err := ctxErr(ctx); err != nil {
		return nil, stats, err
	}

	// Step 1: normalize the source w.r.t. lhs(Σst).
	src, err := normalize.ForMappingCtx(ctx, ic, cm.tgdBodies, opts.norm())
	if err != nil {
		return nil, stats, err
	}
	stats.NormalizeRuns++
	stats.NormalizedSourceFacts = src.Len()
	opts.emit(EventNormalize, "", "source normalized (%s): %d → %d facts", opts.norm(), ic.Len(), src.Len())

	// Step 2: s-t tgd steps. Bodies read only the source, so a single
	// deterministic pass over all homomorphisms reaches the tgd fixpoint.
	// The target shares the normalized source's interner (unless Options
	// overrides it), so every instance of this run is ID-compatible. With
	// Options.Workers ≥ 2 the pass runs partitioned over a frozen source
	// (see cparallel.go), byte-identical to the sequential pass.
	tgt := instance.NewConcreteWith(cm.m.Target, opts.interner(src.Interner()))
	if err := tgdPhase(ctx, src, tgt, cm, gen, opts, &stats); err != nil {
		return nil, stats, err
	}

	// Steps 3–4: egd phase with renormalization. tgt was built here, so
	// the egd loop owns it and may rewrite it in place — or freeze it for
	// the partitioned parallel rounds (see eparallel.go), in which case
	// the returned solution comes back frozen.
	tgt, err = concreteEgds(tgt, cm, opts, &stats, true)
	if err != nil {
		return nil, stats, err
	}

	if opts.coalesce() {
		tgt = tgt.Coalesce()
	}
	return tgt, stats, nil
}

// tgdPhaseSeq is the sequential s-t tgd pass: one deterministic sweep
// over all homomorphisms of every tgd body, firing each new extension
// into tgt. It is the semantic reference the parallel pass reproduces
// byte for byte.
func tgdPhaseSeq(ctx context.Context, src, tgt *instance.Concrete, cm *Compiled, gen *value.NullGen, opts *Options, stats *Stats) error {
	for di := range cm.tgds {
		d := &cm.tgds[di]
		if err := ctxErr(ctx); err != nil {
			return err
		}
		ms := logic.FindAll(src.Store(), d.body, nil)
		stats.TGDHoms += len(ms)
		for hi, h := range ms {
			if hi&ctxCheckMask == 0 {
				if err := ctxErr(ctx); err != nil {
					return err
				}
			}
			if logic.Exists(tgt.Store(), d.head, h.Binding) {
				continue // extension h' to φ+ ∧ ψ+ already exists
			}
			tv, ok := h.Binding[dependency.TemporalVar]
			if !ok || !tv.IsInterval() {
				return fmt.Errorf("chase: tgd %s: temporal variable unbound", d.d.Name)
			}
			t, _ := tv.Interval()
			if err := fireTGD(tgt, d, h.Binding, t, gen, opts, stats); err != nil {
				return err
			}
			opts.recordFire(di)
		}
	}
	return nil
}

// fireTGD applies one tgd chase step: extends bind with a fresh
// interval-annotated null per existential variable and inserts every head
// atom's instantiation at interval t. bind must bind every universal head
// variable (the caller has already ruled the extension out of tgt); it is
// cloned, not mutated. Shared by the sequential pass and the parallel
// merge so both fire identically.
func fireTGD(tgt *instance.Concrete, d *compiledTGD, bind logic.Binding, t interval.Interval, gen *value.NullGen, opts *Options, stats *Stats) error {
	stats.TGDFires++
	opts.emit(EventTGDFire, d.d.Name, "fired at %v with %v", t, bind)
	ext := bind.Clone()
	for _, y := range d.exist {
		ext[y] = gen.FreshAnn(t)
		stats.NullsCreated++
	}
	for _, atom := range d.head {
		n := len(atom.Terms) - 1 // last term is the temporal variable
		args := make([]value.Value, n)
		for i := 0; i < n; i++ {
			v, ok := ext.Apply(atom.Terms[i])
			if !ok {
				return fmt.Errorf("chase: tgd %s: unbound head variable %v", d.d.Name, atom.Terms[i])
			}
			args[i] = v
		}
		added, err := tgt.Insert(fact.NewC(atom.Rel, t, args...))
		if err != nil {
			return fmt.Errorf("chase: tgd %s: %w", d.d.Name, err)
		}
		if added {
			stats.FactsCreated++
		}
	}
	return nil
}

// concreteEgds normalizes the target and applies egd c-chase steps until
// every egd is satisfied. owned reports whether tgt belongs to this
// chase run: owned instances are rewritten in place (or frozen for the
// parallel scans), a caller-supplied one is cloned before the first
// rewrite or freeze so the caller's instance is never mutated. With
// Options.Workers ≥ 2 the renormalization's match-set enumeration and
// the merge-candidate scans run partitioned over the frozen target (see
// eparallel.go), byte-identical to the sequential rounds.
func concreteEgds(tgt *instance.Concrete, cm *Compiled, opts *Options, stats *Stats, owned bool) (*instance.Concrete, error) {
	if len(cm.egds) == 0 {
		return tgt, nil
	}
	ctx := opts.ctx()
	workers := opts.workers()
	if stats.EgdWorkers == 0 {
		stats.EgdWorkers = 1
	}
	naiveDone := false
	for {
		stats.EgdRounds++
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		// Normalize w.r.t. lhs(Σeg) and synchronize null families (an egd
		// identification replaces an annotated null "everywhere", which is
		// only sound when all overlapping occurrences of a family carry the
		// same annotation): every round for Smart; once for Naive (rewrites
		// never change intervals, so the global fragmentation — which is
		// family-consistent by construction — stays normalized).
		if opts.norm() == normalize.StrategyNaive {
			if !naiveDone {
				tgt = normalize.Naive(tgt)
				owned = true // Naive always builds a fresh instance
				stats.NormalizeRuns++
				naiveDone = true
			}
		} else {
			normW := 1
			if workers > 1 && tgt.Len() >= parallelCutoffFacts {
				normW = workers
				if !owned && !tgt.Frozen() {
					// The parallel path freezes what it enumerates; clone a
					// caller-supplied mutable target instead of publishing it
					// out from under the caller.
					tgt = tgt.Clone()
					owned = true
				}
			}
			norm, err := normalize.ForEgdPhaseWorkers(ctx, tgt, cm.egdBodies, normalize.StrategySmart, normW)
			if err != nil {
				return nil, err
			}
			if norm != tgt {
				owned = true // normalization built a fresh instance
			}
			tgt = norm
			stats.NormalizeRuns++
			if normW > stats.EgdWorkers {
				stats.EgdWorkers = normW
			}
			opts.emit(EventNormalize, "", "target normalized for egd round %d: %d facts", stats.EgdRounds, tgt.Len())
		}

		in := tgt.Interner()
		uf := newValueUF(in)
		scanW := 1
		if workers > 1 && opts.egd() != EgdStepwise && tgt.Len() >= parallelCutoffFacts {
			scanW = workers
		}
		if scanW > 1 {
			if !owned && !tgt.Frozen() {
				tgt = tgt.Clone()
				owned = true
			}
			tgt.Store().Freeze() // idempotent; renormalization usually froze it
			if scanW > stats.EgdWorkers {
				stats.EgdWorkers = scanW
			}
			specs := make([]egdScanSpec, len(cm.egds))
			for i := range cm.egds {
				specs[i] = egdScanSpec{body: cm.egds[i].body, x1: cm.egds[i].d.X1, x2: cm.egds[i].d.X2}
			}
			shards, err := collectEgdPairs(ctx, tgt.Store(), specs, scanW)
			if err != nil {
				return nil, err
			}
			// Replay in (egd, worker-rank) order — the sequential candidate
			// stream — so the union-find sees the identical merge sequence.
			seen := 0
			for di := range cm.egds {
				d := &cm.egds[di]
				for w := 0; w < scanW; w++ {
					pairs := shards[w].pairs[di]
					for i := 0; i < len(pairs); i += 2 {
						seen++
						if seen&ctxCheckMask == 0 {
							if err := ctxErr(ctx); err != nil {
								return nil, err
							}
						}
						v1, v2 := uf.canon(pairs[i]), uf.canon(pairs[i+1])
						if v1 == v2 {
							continue
						}
						if err := uf.union(v1, v2); err != nil {
							opts.emit(EventEgdFail, d.d.Name, "constants clash: %v ≠ %v", in.Resolve(v1), in.Resolve(v2))
							return nil, &FailError{Dep: d.d.Name, V1: in.Resolve(v1), V2: in.Resolve(v2)}
						}
						stats.EgdMerges++
						if opts.tracing() {
							opts.emit(EventEgdMerge, d.d.Name, "%v = %v", in.Resolve(v1), in.Resolve(v2))
						}
					}
				}
			}
		} else {
			var stepErr error
			stop := false
			seen := 0
			for _, d := range cm.egds {
				x1, x2 := d.d.X1, d.d.X2
				logic.ForEachIDs(tgt.Store(), d.body, nil, func(h *logic.IDMatch) bool {
					seen++
					if seen&ctxCheckMask == 0 {
						if stepErr = ctxErr(ctx); stepErr != nil {
							return false
						}
					}
					b1, _ := h.ID(x1)
					b2, _ := h.ID(x2)
					v1, v2 := uf.canon(b1), uf.canon(b2)
					if v1 == v2 {
						return true
					}
					if err := uf.union(v1, v2); err != nil {
						stepErr = &FailError{Dep: d.d.Name, V1: in.Resolve(v1), V2: in.Resolve(v2)}
						opts.emit(EventEgdFail, d.d.Name, "constants clash: %v ≠ %v", in.Resolve(v1), in.Resolve(v2))
						return false
					}
					stats.EgdMerges++
					if opts.tracing() {
						opts.emit(EventEgdMerge, d.d.Name, "%v = %v", in.Resolve(v1), in.Resolve(v2))
					}
					stop = opts.egd() == EgdStepwise
					return !stop
				})
				if stepErr != nil {
					return nil, stepErr
				}
				if stop {
					break
				}
			}
		}
		if !uf.dirty() {
			return tgt, nil
		}
		if !owned || tgt.Frozen() {
			// A frozen target (published for the parallel scans) forbids
			// substitution; Clone preserves the physical layout exactly, so
			// rewriting the clone is byte-identical to rewriting in place.
			tgt = tgt.Clone()
			owned = true
		}
		stats.RowsRewritten += rewriteConcrete(tgt, uf)
	}
}

// rewriteConcrete applies the union-find substitution to a concrete
// instance in place, returning the number of rows touched.
// Identifications are per annotated-null value — the same family
// fragmented over two intervals yields two independent unknowns (one per
// snapshot range), and only the equated fragment is replaced, exactly as
// the abstract semantics requires. The substitution is incremental and
// runs entirely on interned rows: the store's reverse ID index yields
// exactly the rows containing a merged ID, those rows' IDs are mapped
// through the union-find in place, and collapsed duplicates are
// invalidated — untouched rows are never hashed, copied, or re-resolved
// (the substitution preserves the fact invariants: arity is unchanged,
// and an egd only equates values from facts with identical intervals, so
// annotations keep matching their fact's interval).
func rewriteConcrete(c *instance.Concrete, uf *valueUF) int {
	return c.Store().SubstituteIDs(uf.substituted(), uf.canon)
}

// EgdPhase exposes the egd stage of the c-chase for callers that build
// the target instance themselves (e.g. the temporal-mapping extension):
// it normalizes tgt w.r.t. the mapping's egd bodies, synchronizes null
// families, and applies egd steps to a fixpoint. tgt itself is never
// mutated; rewrites happen on normalization outputs or a private clone.
func EgdPhase(tgt *instance.Concrete, m *dependency.Mapping, opts *Options) (*instance.Concrete, Stats, error) {
	cm, err := CompileMapping(m)
	if err != nil {
		return nil, Stats{}, err
	}
	return EgdPhaseCompiled(tgt, cm, opts)
}

// EgdPhaseCompiled is EgdPhase against a pre-compiled mapping.
func EgdPhaseCompiled(tgt *instance.Concrete, cm *Compiled, opts *Options) (*instance.Concrete, Stats, error) {
	var stats Stats
	out, err := concreteEgds(tgt, cm, opts, &stats, false)
	return out, stats, err
}

// EgdPhaseCompiledOwned is EgdPhaseCompiled for a target the caller
// hands over to the egd phase: tgt may be rewritten in place or frozen
// (the parallel scans freeze what they enumerate), saving the defensive
// clone EgdPhaseCompiled pays. The temporal (§7) chase builds its own
// target and enters here.
func EgdPhaseCompiledOwned(tgt *instance.Concrete, cm *Compiled, opts *Options) (*instance.Concrete, Stats, error) {
	var stats Stats
	out, err := concreteEgds(tgt, cm, opts, &stats, true)
	return out, stats, err
}
