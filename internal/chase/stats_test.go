package chase

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"unicode"
)

// TestStatsJSONRoundTrip pins the Stats wire encoding: every exported
// field carries a stable lowerCamel json tag, the tags are pairwise
// distinct, and marshal→unmarshal reproduces the struct exactly. Filling
// each field with a distinct value catches two fields accidentally
// sharing a tag (the duplicate would survive marshaling but clobber on
// unmarshal).
func TestStatsJSONRoundTrip(t *testing.T) {
	var s Stats
	rv := reflect.ValueOf(&s).Elem()
	rt := rv.Type()
	tags := make(map[string]bool, rt.NumField())
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		tag := f.Tag.Get("json")
		if tag == "" || tag == "-" {
			t.Fatalf("Stats.%s has no json tag; the wire encoding must name every field", f.Name)
		}
		name := strings.Split(tag, ",")[0]
		if name == "" || !unicode.IsLower(rune(name[0])) {
			t.Fatalf("Stats.%s json tag %q is not lowerCamel", f.Name, tag)
		}
		if tags[name] {
			t.Fatalf("duplicate json tag %q", name)
		}
		tags[name] = true
		switch f.Type.Kind() {
		case reflect.Int:
			rv.Field(i).SetInt(int64(100 + i))
		case reflect.Bool:
			rv.Field(i).SetBool(true)
		default:
			t.Fatalf("Stats.%s is %v; extend this test before adding fields of new kinds", f.Name, f.Type)
		}
	}

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for name := range tags {
		if !strings.Contains(string(data), `"`+name+`"`) {
			t.Fatalf("encoded stats missing field %q:\n%s", name, data)
		}
	}
	var back Stats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip changed stats:\n%+v\nvs\n%+v", back, s)
	}
}

// TestStatsJSONFieldNames pins the exact published names: renaming one is
// a wire-compatibility break for tdxd clients, so it must be a conscious
// test edit, not a refactor side effect.
func TestStatsJSONFieldNames(t *testing.T) {
	data, err := json.Marshal(Stats{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"normalizedSourceFacts", "tgdHoms", "tgdFires", "factsCreated",
		"nullsCreated", "egdRounds", "egdMerges", "normalizeRuns",
		"rowsRewritten", "tgdWorkers", "egdWorkers",
		"deltaFacts", "deltaFires", "baseRowsRewritten", "fallbackFullChase",
	} {
		if !strings.Contains(string(data), `"`+want+`"`) {
			t.Fatalf("published field %q missing from encoding:\n%s", want, data)
		}
	}
}
