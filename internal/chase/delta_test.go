package chase

import (
	"math/rand"
	"testing"

	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/workload"
)

// TestConcreteDeltaEquivalence is the adjudicator of the incremental
// chase: across random mappings, random sources, random base/delta
// splits, and worker counts, ConcreteDelta over a retained base run
// must produce byte-identical output (facts, null family ids — String
// renders both) to a full chase over the combined source, whether it
// takes the fast path or falls back. It also asserts the suite
// exercises the fast path at all, so a regression that silently falls
// back on everything cannot pass.
func TestConcreteDeltaEquivalence(t *testing.T) {
	fastPaths := 0
	trials := 0
	for seed := int64(0); seed < 30; seed++ {
		for _, workers := range []int{1, 2, 4} {
			if workers > 1 && seed >= 6 {
				continue // full worker sweep on the first seeds, breadth on one worker
			}
			r := rand.New(rand.NewSource(seed))
			m := workload.RandomMapping(r)
			nFacts := 40 + r.Intn(200)
			all := workload.RandomInstanceFor(r, m, nFacts)
			cut := all.Len() - (1 + r.Intn(7))
			if cut < 1 {
				cut = 1
			}
			baseIC := instance.NewConcreteWith(m.Source, all.Interner())
			deltaIC := instance.NewConcreteWith(m.Source, all.Interner())
			fullIC := instance.NewConcreteWith(m.Source, all.Interner())
			i := 0
			all.EachFact(func(f fact.CFact) bool {
				if i < cut {
					baseIC.MustInsert(f)
				} else {
					deltaIC.MustInsert(f)
				}
				fullIC.MustInsert(f)
				i++
				return true
			})

			cm, err := CompileMapping(m)
			if err != nil {
				t.Fatalf("seed %d: compile: %v", seed, err)
			}
			opts := &Options{Workers: workers}
			wantOut, _, _, wantErr := ConcreteCompiledBase(fullIC, cm, &Options{Workers: workers})

			baseOut, _, baseState, baseErr := ConcreteCompiledBase(baseIC, cm, opts)
			if baseErr != nil {
				// The base alone has no solution; the combined source cannot
				// have one either (its egd violations persist).
				if wantErr == nil {
					t.Fatalf("seed %d w%d: base chase failed (%v) but full chase succeeded", seed, workers, baseErr)
				}
				continue
			}
			_ = baseOut
			gotOut, gotStats, nextBase, gotErr := ConcreteDelta(baseState, deltaIC, opts)
			trials++
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("seed %d w%d: delta err = %v, full err = %v", seed, workers, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			if !gotStats.FallbackFullChase {
				fastPaths++
			}
			if got, want := gotOut.String(), wantOut.String(); got != want {
				t.Fatalf("seed %d w%d (fallback=%v): delta solution diverges from full chase\n--- delta ---\n%s\n--- full ---\n%s",
					seed, workers, gotStats.FallbackFullChase, got, want)
			}
			if nextBase == nil {
				t.Fatalf("seed %d w%d: delta run returned no base state", seed, workers)
			}
			if got, want := nextBase.Solution().String(), wantOut.String(); got != want {
				t.Fatalf("seed %d w%d: retained solution diverges from returned one", seed, workers)
			}
			// Snapshots must agree too (semantic identity on top of the
			// syntactic one).
			for _, tp := range instance.SamplePoints(gotOut.Abstract(), wantOut.Abstract()) {
				if !gotOut.Snapshot(tp).Equal(wantOut.Snapshot(tp)) {
					t.Fatalf("seed %d w%d: snapshot at %v diverges", seed, workers, tp)
				}
			}
		}
	}
	if trials == 0 {
		t.Fatal("no trial ran a delta chase")
	}
	if fastPaths == 0 {
		t.Fatal("every trial fell back to a full re-chase; the incremental path was never exercised")
	}
	t.Logf("delta equivalence: %d trials, %d fast paths", trials, fastPaths)
}

// TestConcreteDeltaChains applies two deltas in sequence and compares
// against one full chase over everything: the BaseState returned by a
// delta run must itself be a valid base for the next.
func TestConcreteDeltaChains(t *testing.T) {
	for seed := int64(100); seed < 112; seed++ {
		r := rand.New(rand.NewSource(seed))
		m := workload.RandomMapping(r)
		all := workload.RandomInstanceFor(r, m, 60+r.Intn(100))
		n := all.Len()
		cut1, cut2 := n-8, n-4
		if cut1 < 1 {
			continue
		}
		ics := make([]*instance.Concrete, 4) // base, delta1, delta2, full
		for i := range ics {
			ics[i] = instance.NewConcreteWith(m.Source, all.Interner())
		}
		i := 0
		all.EachFact(func(f fact.CFact) bool {
			switch {
			case i < cut1:
				ics[0].MustInsert(f)
			case i < cut2:
				ics[1].MustInsert(f)
			default:
				ics[2].MustInsert(f)
			}
			ics[3].MustInsert(f)
			i++
			return true
		})
		cm, err := CompileMapping(m)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		wantOut, _, _, wantErr := ConcreteCompiledBase(ics[3], cm, nil)
		_, _, st0, err0 := ConcreteCompiledBase(ics[0], cm, nil)
		if err0 != nil {
			if wantErr == nil {
				t.Fatalf("seed %d: base failed but full succeeded", seed)
			}
			continue
		}
		_, _, st1, err1 := ConcreteDelta(st0, ics[1], nil)
		if err1 != nil {
			if wantErr == nil {
				t.Fatalf("seed %d: first delta failed (%v) but full succeeded", seed, err1)
			}
			continue
		}
		got, _, _, err2 := ConcreteDelta(st1, ics[2], nil)
		if (err2 == nil) != (wantErr == nil) {
			t.Fatalf("seed %d: second delta err = %v, full err = %v", seed, err2, wantErr)
		}
		if err2 != nil {
			continue
		}
		if got.String() != wantOut.String() {
			t.Fatalf("seed %d: chained deltas diverge from full chase\n--- chained ---\n%s\n--- full ---\n%s",
				seed, got.String(), wantOut.String())
		}
	}
}

// TestConcreteDeltaEmpty pins the no-op contract: a delta containing
// only already-known facts returns the retained solution unchanged.
func TestConcreteDeltaEmpty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := workload.RandomMapping(r)
	ic := workload.RandomInstanceFor(r, m, 50)
	cm, err := CompileMapping(m)
	if err != nil {
		t.Fatal(err)
	}
	out, _, st, err := ConcreteCompiledBase(ic, cm, nil)
	if err != nil {
		t.Skipf("base chase failed: %v", err)
	}
	dup := instance.NewConcreteWith(m.Source, ic.Interner())
	ic.EachFact(func(f fact.CFact) bool {
		dup.MustInsert(f)
		return true
	})
	got, stats, next, err := ConcreteDelta(st, dup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeltaFacts != 0 || stats.FallbackFullChase {
		t.Fatalf("duplicate delta counted as new: %+v", stats)
	}
	if got != out {
		t.Fatal("no-op delta did not return the retained solution")
	}
	if next != st {
		t.Fatal("no-op delta did not return the retained base state")
	}
}
