package chase

import (
	"fmt"

	"repro/internal/dependency"
	"repro/internal/logic"
)

// Compiled is a schema mapping compiled for repeated chase runs: the
// concrete (interval-tailed) bodies and heads of every dependency, the
// existential variables of every tgd, and the egd well-formedness checks
// are derived once, so a long-lived caller — the public tdx.Exchange,
// which serves one mapping to many source instances — pays parsing and
// derivation once instead of per run. A Compiled mapping is immutable
// after construction and safe for concurrent use by any number of chase
// runs.
type Compiled struct {
	m         *dependency.Mapping
	tgds      []compiledTGD
	egds      []compiledEGD
	tgdBodies []logic.Conjunction // concrete tgd bodies: the normalization Φ+ set
	egdBodies []logic.Conjunction // concrete egd bodies: the egd-phase Φ+ set
}

// compiledTGD caches one tgd's derived forms: the concrete body/head for
// the c-chase, the existential variable list (shared with the snapshot
// chase, whose plain body/head live on d), and the universal head
// variables the parallel chase records per match.
type compiledTGD struct {
	d        dependency.TGD
	body     logic.Conjunction // ConcreteBody()
	head     logic.Conjunction // ConcreteHead()
	exist    []string
	headVars []string // universal data variables of the head, in first-occurrence order
}

// compiledEGD caches one egd's concrete body; the plain body for the
// snapshot chase lives on d.
type compiledEGD struct {
	d    dependency.EGD
	body logic.Conjunction // ConcreteBody()
}

// CompileMapping derives the reusable chase artifacts of a mapping. It
// rejects malformed egds (an equated variable missing from the body
// would bind to no value) up front, so runs never re-validate. The
// mapping itself is not schema-validated here — use
// dependency.Mapping.Validate (or the tdx facade, which does both).
func CompileMapping(m *dependency.Mapping) (*Compiled, error) {
	cm := &Compiled{
		m:         m,
		tgds:      make([]compiledTGD, len(m.TGDs)),
		egds:      make([]compiledEGD, len(m.EGDs)),
		tgdBodies: make([]logic.Conjunction, len(m.TGDs)),
		egdBodies: make([]logic.Conjunction, len(m.EGDs)),
	}
	for i, d := range m.TGDs {
		cm.tgds[i] = compiledTGD{
			d:     d,
			body:  d.ConcreteBody(),
			head:  d.ConcreteHead(),
			exist: d.Existentials(),
		}
		ct := &cm.tgds[i]
		isExist := make(map[string]bool, len(ct.exist))
		for _, y := range ct.exist {
			isExist[y] = true
		}
		for _, v := range ct.head.Vars() {
			if v != dependency.TemporalVar && !isExist[v] {
				ct.headVars = append(ct.headVars, v)
			}
		}
		cm.tgdBodies[i] = ct.body
	}
	for i, d := range m.EGDs {
		body := d.ConcreteBody()
		if !body.HasVar(d.X1) || !body.HasVar(d.X2) {
			return nil, fmt.Errorf("chase: egd %s equates %q and %q but its body binds only %v", d.Name, d.X1, d.X2, d.Body.Vars())
		}
		cm.egds[i] = compiledEGD{d: d, body: body}
		cm.egdBodies[i] = body
	}
	return cm, nil
}

// Mapping returns the underlying schema mapping.
func (c *Compiled) Mapping() *dependency.Mapping { return c.m }

// TGDBodies returns the concrete tgd bodies — the Φ+ set the source is
// normalized against. Shared; do not mutate.
func (c *Compiled) TGDBodies() []logic.Conjunction { return c.tgdBodies }
