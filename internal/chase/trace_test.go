package chase

import (
	"strings"
	"testing"

	"repro/internal/fact"
	"repro/internal/paperex"
	"repro/internal/value"
)

func TestTraceEvents(t *testing.T) {
	var events []Event
	opts := &Options{Trace: func(e Event) { events = append(events, e) }}
	if _, _, err := Concrete(paperex.Figure4(), paperex.EmploymentMapping(), opts); err != nil {
		t.Fatal(err)
	}
	var norm, fires, merges int
	for _, e := range events {
		switch e.Kind {
		case EventNormalize:
			norm++
		case EventTGDFire:
			fires++
		case EventEgdMerge:
			merges++
		case EventEgdFail:
			t.Fatalf("unexpected failure event: %v", e)
		}
	}
	if norm != 3 || fires != 8 || merges != 3 {
		t.Fatalf("event counts: norm=%d fires=%d merges=%d (want 3/8/3)", norm, fires, merges)
	}
	// The first event is the source normalization with sizes.
	if events[0].Kind != EventNormalize || !strings.Contains(events[0].Detail, "5 → 9") {
		t.Fatalf("first event = %v", events[0])
	}
	// Event rendering includes the dependency label when present.
	found := false
	for _, e := range events {
		if e.Kind == EventTGDFire && strings.HasPrefix(e.String(), "tgd-fire sigma") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no labelled tgd-fire event in %v", events)
	}
}

func TestTraceFailureEvent(t *testing.T) {
	m := paperex.EmploymentMapping()
	ic := paperex.Figure4()
	// A second salary conflicting with Ada's 18k while she is at IBM.
	ic.MustInsert(fact.NewC("S", paperex.Iv(2013, 2014), paperex.C("Ada"), paperex.C("99k")))
	var failures int
	opts := &Options{Trace: func(e Event) {
		if e.Kind == EventEgdFail {
			failures++
		}
	}}
	if _, _, err := Concrete(ic, m, opts); err == nil {
		t.Fatal("expected failure")
	}
	if failures != 1 {
		t.Fatalf("failure events = %d", failures)
	}
}

func TestEnumStrings(t *testing.T) {
	if EgdBatch.String() != "batch" || EgdStepwise.String() != "stepwise" {
		t.Fatal("EgdStrategy strings")
	}
	kinds := map[EventKind]string{
		EventNormalize: "normalize",
		EventTGDFire:   "tgd-fire",
		EventEgdMerge:  "egd-merge",
		EventEgdFail:   "egd-fail",
		EventKind(99):  "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("%d.String() = %q want %q", k, k.String(), want)
		}
	}
	e := Event{Kind: EventEgdMerge, Detail: "x = y"}
	if e.String() != "egd-merge: x = y" {
		t.Fatalf("Event.String = %q", e.String())
	}
}

func TestValueUFEdgeCases(t *testing.T) {
	in := value.NewInterner()
	a, b := in.Intern(value.NewConst("a")), in.Intern(value.NewConst("b"))
	n1, n2, n3 := in.Intern(value.NewNull(1)), in.Intern(value.NewNull(2)), in.Intern(value.NewNull(3))
	uf := newValueUF(in)
	// Merging a value with itself is a no-op.
	if err := uf.union(n1, n1); err != nil {
		t.Fatal(err)
	}
	if uf.dirty() {
		t.Fatal("self-union must not dirty the structure")
	}
	// Null chains resolve to the constant at the end.
	if err := uf.union(n1, n2); err != nil {
		t.Fatal(err)
	}
	if err := uf.union(n2, n3); err != nil {
		t.Fatal(err)
	}
	if err := uf.union(n3, a); err != nil {
		t.Fatal(err)
	}
	for _, n := range []value.ID{n1, n2, n3} {
		if uf.canon(n) != a {
			t.Fatalf("canon(%v) = %v, want a", n, uf.canon(n))
		}
	}
	// Transitive constant clash.
	if err := uf.union(uf.canon(n1), uf.canon(b)); err == nil {
		t.Fatal("clash through chain not detected")
	}
	// Direct constant clash.
	uf2 := newValueUF(in)
	if err := uf2.union(a, b); err == nil {
		t.Fatal("direct clash not detected")
	}
	// Deterministic representative for null-null merges, regardless of
	// union order.
	uf3 := newValueUF(in)
	if err := uf3.union(n2, n1); err != nil {
		t.Fatal(err)
	}
	if uf3.canon(n2) != n1 {
		t.Fatalf("representative = %v, want the smaller null", uf3.canon(n2))
	}
	// An ID the union-find has never seen is its own representative.
	fresh := in.Intern(value.NewNull(99))
	if uf3.canon(fresh) != fresh {
		t.Fatalf("canon of untouched id = %v, want identity", uf3.canon(fresh))
	}
}

// TestValueUFLongChain is the regression test for the recursive find of
// the old map-based union-find, which overflowed the stack on long merge
// chains: 100k nulls merged into one chain must resolve iteratively, and
// to the smallest member.
func TestValueUFLongChain(t *testing.T) {
	const n = 100_000
	in := value.NewInterner()
	ids := make([]value.ID, n)
	for i := 0; i < n; i++ {
		ids[i] = in.Intern(value.NewNull(uint64(i + 1)))
	}
	uf := newValueUF(in)
	// Chain the nulls worst-case-first so a naive linked structure would
	// be n deep.
	for i := n - 1; i > 0; i-- {
		if err := uf.union(ids[i], ids[i-1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, probe := range []int{0, 1, n / 2, n - 2, n - 1} {
		if got := uf.canon(ids[probe]); got != ids[0] {
			t.Fatalf("canon(ids[%d]) = %v, want ids[0]=%v", probe, got, ids[0])
		}
	}
	// Absorbing a constant at the end re-canonicalizes the whole chain.
	c := in.Intern(value.NewConst("pin"))
	if err := uf.union(ids[n-1], c); err != nil {
		t.Fatal(err)
	}
	if got := uf.canon(ids[3]); got != c {
		t.Fatalf("after constant absorption canon = %v, want the constant", got)
	}
}
