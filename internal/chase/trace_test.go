package chase

import (
	"strings"
	"testing"

	"repro/internal/fact"
	"repro/internal/paperex"
	"repro/internal/value"
)

func TestTraceEvents(t *testing.T) {
	var events []Event
	opts := &Options{Trace: func(e Event) { events = append(events, e) }}
	if _, _, err := Concrete(paperex.Figure4(), paperex.EmploymentMapping(), opts); err != nil {
		t.Fatal(err)
	}
	var norm, fires, merges int
	for _, e := range events {
		switch e.Kind {
		case EventNormalize:
			norm++
		case EventTGDFire:
			fires++
		case EventEgdMerge:
			merges++
		case EventEgdFail:
			t.Fatalf("unexpected failure event: %v", e)
		}
	}
	if norm != 3 || fires != 8 || merges != 3 {
		t.Fatalf("event counts: norm=%d fires=%d merges=%d (want 3/8/3)", norm, fires, merges)
	}
	// The first event is the source normalization with sizes.
	if events[0].Kind != EventNormalize || !strings.Contains(events[0].Detail, "5 → 9") {
		t.Fatalf("first event = %v", events[0])
	}
	// Event rendering includes the dependency label when present.
	found := false
	for _, e := range events {
		if e.Kind == EventTGDFire && strings.HasPrefix(e.String(), "tgd-fire sigma") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no labelled tgd-fire event in %v", events)
	}
}

func TestTraceFailureEvent(t *testing.T) {
	m := paperex.EmploymentMapping()
	ic := paperex.Figure4()
	// A second salary conflicting with Ada's 18k while she is at IBM.
	ic.MustInsert(fact.NewC("S", paperex.Iv(2013, 2014), paperex.C("Ada"), paperex.C("99k")))
	var failures int
	opts := &Options{Trace: func(e Event) {
		if e.Kind == EventEgdFail {
			failures++
		}
	}}
	if _, _, err := Concrete(ic, m, opts); err == nil {
		t.Fatal("expected failure")
	}
	if failures != 1 {
		t.Fatalf("failure events = %d", failures)
	}
}

func TestEnumStrings(t *testing.T) {
	if EgdBatch.String() != "batch" || EgdStepwise.String() != "stepwise" {
		t.Fatal("EgdStrategy strings")
	}
	kinds := map[EventKind]string{
		EventNormalize: "normalize",
		EventTGDFire:   "tgd-fire",
		EventEgdMerge:  "egd-merge",
		EventEgdFail:   "egd-fail",
		EventKind(99):  "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("%d.String() = %q want %q", k, k.String(), want)
		}
	}
	e := Event{Kind: EventEgdMerge, Detail: "x = y"}
	if e.String() != "egd-merge: x = y" {
		t.Fatalf("Event.String = %q", e.String())
	}
}

func TestValueUFEdgeCases(t *testing.T) {
	uf := newValueUF()
	a, b := value.NewConst("a"), value.NewConst("b")
	n1, n2, n3 := value.NewNull(1), value.NewNull(2), value.NewNull(3)
	// Merging a value with itself is a no-op.
	if err := uf.union(n1, n1); err != nil {
		t.Fatal(err)
	}
	if uf.dirty() {
		t.Fatal("self-union must not dirty the structure")
	}
	// Null chains resolve to the constant at the end.
	if err := uf.union(n1, n2); err != nil {
		t.Fatal(err)
	}
	if err := uf.union(n2, n3); err != nil {
		t.Fatal(err)
	}
	if err := uf.union(n3, a); err != nil {
		t.Fatal(err)
	}
	for _, n := range []value.Value{n1, n2, n3} {
		if uf.find(n) != a {
			t.Fatalf("find(%v) = %v, want a", n, uf.find(n))
		}
	}
	// Transitive constant clash.
	if err := uf.union(n1, b); err == nil {
		t.Fatal("clash through chain not detected")
	}
	// Direct constant clash.
	uf2 := newValueUF()
	if err := uf2.union(a, b); err == nil {
		t.Fatal("direct clash not detected")
	}
	// Deterministic representative for null-null merges.
	uf3 := newValueUF()
	if err := uf3.union(n2, n1); err != nil {
		t.Fatal(err)
	}
	if uf3.find(n2) != n1 {
		t.Fatalf("representative = %v, want the smaller null", uf3.find(n2))
	}
}
