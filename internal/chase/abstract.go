package chase

import (
	"fmt"

	"repro/internal/dependency"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/value"
)

// Abstract runs the abstract chase (paper §3):
//
//	chase(Ia, M) = ⟨chase(db0, M), chase(db1, M), ...⟩
//
// applied to the finite segmented representation: every snapshot inside a
// segment is an identical copy, so one chase per segment suffices, with
// the fresh nulls materialized as interval-annotated families over the
// segment — precisely the "fresh labeled nulls produced in a snapshot are
// distinct from the labeled nulls produced in the other snapshots"
// requirement, since a family projects to a distinct null per snapshot.
//
// A failure in any segment is a failure of the whole chase, and by
// Proposition 4 part 2 proves that no solution exists.
func Abstract(ia *instance.Abstract, m *dependency.Mapping, opts *Options) (*instance.Abstract, Stats, error) {
	cm, err := CompileMapping(m)
	if err != nil {
		return nil, Stats{}, err
	}
	return abstractCompiled(ia, cm, opts)
}

// abstractCompiled is Abstract against a pre-compiled mapping.
func abstractCompiled(ia *instance.Abstract, cm *Compiled, opts *Options) (*instance.Abstract, Stats, error) {
	gen := opts.gen()
	ctx := opts.ctx()
	var total Stats
	segs := make([]instance.Segment, 0, len(ia.Segments()))
	for _, seg := range ia.Segments() {
		if err := ctxErr(ctx); err != nil {
			return nil, total, err
		}
		// Build the segment's representative source snapshot. Source
		// instances are complete (paper §2), so segment facts carry only
		// constants; reject anything else loudly.
		src := instance.NewSnapshot()
		for _, f := range seg.Facts {
			for _, v := range f.Args {
				if !v.IsConst() {
					return nil, total, fmt.Errorf("chase: abstract source must be complete, found %v in segment %v", v, seg.Iv)
				}
			}
			src.Insert(fact.New(f.Rel, f.Args...))
		}
		segIv := seg.Iv
		fresh := func() value.Value { return gen.FreshAnn(segIv) }
		tgtSnap, stats, err := snapshotCompiled(src, cm, fresh, opts)
		total.TGDHoms += stats.TGDHoms
		total.TGDFires += stats.TGDFires
		total.FactsCreated += stats.FactsCreated
		total.NullsCreated += stats.NullsCreated
		total.EgdRounds += stats.EgdRounds
		total.EgdMerges += stats.EgdMerges
		total.RowsRewritten += stats.RowsRewritten
		if err != nil {
			return nil, total, fmt.Errorf("in segment %v: %w", seg.Iv, err)
		}
		tgtSeg := instance.Segment{Iv: segIv}
		for _, f := range tgtSnap.Facts() {
			tgtSeg.Facts = append(tgtSeg.Facts, fact.NewC(f.Rel, segIv, f.Args...))
		}
		segs = append(segs, tgtSeg)
	}
	out, err := instance.NewAbstract(segs)
	if err != nil {
		return nil, total, err
	}
	return out, total, nil
}
