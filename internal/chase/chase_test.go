package chase

import (
	"errors"
	"testing"

	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/normalize"
	"repro/internal/paperex"
	"repro/internal/value"
)

func TestFigure9ConcreteChase(t *testing.T) {
	// c-chase(Figure 4, M+ of Example 6) must produce Figure 9's five
	// facts: three with constant salaries, two with interval-annotated
	// nulls for Ada@[2012,2013) and Bob@[2013,2015).
	ic := paperex.Figure4()
	m := paperex.EmploymentMapping()
	jc, stats, err := Concrete(ic, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	iv, c, inf := paperex.Iv, paperex.C, paperex.Inf
	if jc.Len() != 5 {
		t.Fatalf("got %d facts, want 5:\n%s", jc.Len(), jc)
	}
	for _, want := range []fact.CFact{
		fact.NewC("Emp", iv(2013, 2014), c("Ada"), c("IBM"), c("18k")),
		fact.NewC("Emp", iv(2014, inf), c("Ada"), c("Google"), c("18k")),
		fact.NewC("Emp", iv(2015, 2018), c("Bob"), c("IBM"), c("13k")),
	} {
		if !jc.Contains(want) {
			t.Fatalf("missing %v in:\n%s", want, jc)
		}
	}
	// The two null facts, checked structurally (family ids are fresh).
	var nullFacts []fact.CFact
	for _, f := range jc.Facts() {
		if f.HasNulls() {
			nullFacts = append(nullFacts, f)
		}
	}
	if len(nullFacts) != 2 {
		t.Fatalf("want 2 null facts, got %v", nullFacts)
	}
	check := func(f fact.CFact, name, comp string, want interval.Interval) {
		t.Helper()
		if f.Args[0] != c(name) || f.Args[1] != c(comp) || f.T != want {
			t.Fatalf("unexpected null fact %v", f)
		}
		s := f.Args[2]
		if s.Kind() != value.AnnNull {
			t.Fatalf("salary of %v is not an annotated null", f)
		}
		if ann, _ := s.Interval(); ann != want {
			t.Fatalf("annotation %v disagrees with fact interval %v", ann, want)
		}
	}
	// Facts() is deterministic: Ada before Bob.
	check(nullFacts[0], "Ada", "IBM", iv(2012, 2013))
	check(nullFacts[1], "Bob", "IBM", iv(2013, 2015))
	if nullFacts[0].Args[2].ID == nullFacts[1].Args[2].ID {
		t.Fatal("the two unknown salaries must be distinct null families")
	}
	// Harness sanity: the run did normalize, fire tgds, and merge nulls.
	if stats.NormalizedSourceFacts != 9 {
		t.Fatalf("normalized source facts = %d, want 9 (Figure 5)", stats.NormalizedSourceFacts)
	}
	if stats.TGDFires != 8 || stats.NullsCreated != 5 || stats.EgdMerges != 3 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestFigure3AbstractChase(t *testing.T) {
	// The abstract chase result of Example 5 / Figure 3, checked at the
	// paper's sampled years.
	ic := paperex.Figure4()
	m := paperex.EmploymentMapping()
	ja, _, err := Abstract(ic.Abstract(), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := paperex.C
	type wantFact struct {
		name, comp string
		salary     value.Value // zero Value means "some null"
	}
	tests := []struct {
		tp   interval.Time
		want []wantFact
	}{
		{2012, []wantFact{{"Ada", "IBM", value.Value{}}}},
		{2013, []wantFact{{"Ada", "IBM", c("18k")}, {"Bob", "IBM", value.Value{}}}},
		{2014, []wantFact{{"Ada", "Google", c("18k")}, {"Bob", "IBM", value.Value{}}}},
		{2015, []wantFact{{"Ada", "Google", c("18k")}, {"Bob", "IBM", c("13k")}}},
		{2018, []wantFact{{"Ada", "Google", c("18k")}}},
		{2011, nil},
	}
	for _, tt := range tests {
		snap := ja.Snapshot(tt.tp)
		if snap.Len() != len(tt.want) {
			t.Fatalf("snapshot %v = %s, want %d facts", tt.tp, snap, len(tt.want))
		}
		for _, w := range tt.want {
			found := false
			for _, f := range snap.Facts() {
				if f.Rel != "Emp" || f.Args[0] != c(w.name) || f.Args[1] != c(w.comp) {
					continue
				}
				if w.salary == (value.Value{}) {
					if f.Args[2].Kind() == value.Null {
						found = true
					}
				} else if f.Args[2] == w.salary {
					found = true
				}
			}
			if !found {
				t.Fatalf("snapshot %v missing %v: %s", tt.tp, w, snap)
			}
		}
	}
	// Distinct snapshots get distinct nulls (the chase produces fresh
	// nulls per snapshot): Bob's unknown salary at 2013 and 2014.
	n13 := ja.Snapshot(2013).Nulls()
	n14 := ja.Snapshot(2014).Nulls()
	if len(n13) != 1 || len(n14) != 1 || n13[0] == n14[0] {
		t.Fatalf("per-snapshot nulls not distinct: %v vs %v", n13, n14)
	}
}

func TestChaseFailureOnEgdClash(t *testing.T) {
	// Ada holds two different salaries while at IBM during overlapping
	// years: the egd equates 18k and 20k — no solution (Prop 4 part 2,
	// Theorem 19 part 2), on both views.
	m := paperex.EmploymentMapping()
	iv, c := paperex.Iv, paperex.C
	ic := instance.NewConcrete(m.Source)
	ic.MustInsert(fact.NewC("E", iv(2013, 2016), c("Ada"), c("IBM")))
	ic.MustInsert(fact.NewC("S", iv(2013, 2015), c("Ada"), c("18k")))
	ic.MustInsert(fact.NewC("S", iv(2014, 2016), c("Ada"), c("20k")))

	_, _, err := Concrete(ic, m, nil)
	if !errors.Is(err, ErrNoSolution) {
		t.Fatalf("concrete chase error = %v, want ErrNoSolution", err)
	}
	var fe *FailError
	if !errors.As(err, &fe) || fe.V1 == fe.V2 {
		t.Fatalf("failure details missing: %v", err)
	}

	_, _, err = Abstract(ic.Abstract(), m, nil)
	if !errors.Is(err, ErrNoSolution) {
		t.Fatalf("abstract chase error = %v, want ErrNoSolution", err)
	}
}

func TestNoFailureWhenOverlapMissing(t *testing.T) {
	// The same two salaries on disjoint intervals are consistent: the
	// snapshots never see both at once.
	m := paperex.EmploymentMapping()
	iv, c := paperex.Iv, paperex.C
	ic := instance.NewConcrete(m.Source)
	ic.MustInsert(fact.NewC("E", iv(2013, 2016), c("Ada"), c("IBM")))
	ic.MustInsert(fact.NewC("S", iv(2013, 2014), c("Ada"), c("18k")))
	ic.MustInsert(fact.NewC("S", iv(2014, 2016), c("Ada"), c("20k")))
	jc, _, err := Concrete(ic, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !jc.Contains(fact.NewC("Emp", iv(2013, 2014), c("Ada"), c("IBM"), c("18k"))) ||
		!jc.Contains(fact.NewC("Emp", iv(2014, 2016), c("Ada"), c("IBM"), c("20k"))) {
		t.Fatalf("expected both salaries on disjoint intervals:\n%s", jc)
	}
}

func TestNaiveStrategySameSemantics(t *testing.T) {
	// Smart and Naive normalization produce semantically equal solutions
	// (different fragmentations of the same abstract instance).
	ic := paperex.Figure4()
	m := paperex.EmploymentMapping()
	smart, _, err := Concrete(ic, m, &Options{Norm: normalize.StrategySmart})
	if err != nil {
		t.Fatal(err)
	}
	naive, _, err := Concrete(ic, m, &Options{Norm: normalize.StrategyNaive})
	if err != nil {
		t.Fatal(err)
	}
	// Constant parts coincide after coalescing; null families differ in
	// fragmentation, so compare snapshot structure instead of literals.
	a, b := smart.Abstract(), naive.Abstract()
	for _, tp := range instance.SamplePoints(a, b) {
		sa, sb := a.Snapshot(tp), b.Snapshot(tp)
		if sa.Len() != sb.Len() {
			t.Fatalf("snapshot sizes differ at %v: %s vs %s", tp, sa, sb)
		}
	}
}

func TestStepwiseEgdSameResult(t *testing.T) {
	ic := paperex.Figure4()
	m := paperex.EmploymentMapping()
	batch, _, err := Concrete(ic, m, &Options{Egd: EgdBatch})
	if err != nil {
		t.Fatal(err)
	}
	step, _, err := Concrete(ic, m, &Options{Egd: EgdStepwise})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Len() != step.Len() {
		t.Fatalf("batch %d facts vs stepwise %d:\n%s\nvs\n%s", batch.Len(), step.Len(), batch, step)
	}
}

func TestCoalesceOption(t *testing.T) {
	ic := paperex.Figure4()
	m := paperex.EmploymentMapping()
	jc, _, err := Concrete(ic, m, &Options{Coalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	if !jc.IsCoalesced() {
		t.Fatalf("solution not coalesced:\n%s", jc)
	}
	// Figure 9 is already coalesced, so the same five facts remain.
	if jc.Len() != 5 {
		t.Fatalf("coalesced solution has %d facts:\n%s", jc.Len(), jc)
	}
}

func TestEmptySourceAndNoEgds(t *testing.T) {
	m := paperex.EmploymentMapping()
	empty := instance.NewConcrete(m.Source)
	jc, _, err := Concrete(empty, m, nil)
	if err != nil || jc.Len() != 0 {
		t.Fatalf("empty chase: %v / %d facts", err, jc.Len())
	}
	// A mapping without egds skips the egd phase entirely.
	m2 := paperex.EmploymentMapping()
	m2.EGDs = nil
	jc2, stats, err := Concrete(paperex.Figure4(), m2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EgdRounds != 0 || jc2.Len() != 8 {
		t.Fatalf("no-egd chase: rounds=%d facts=%d", stats.EgdRounds, jc2.Len())
	}
}

func TestChaseDeterminism(t *testing.T) {
	m := paperex.EmploymentMapping()
	a, _, err := Concrete(paperex.Figure4(), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Concrete(paperex.Figure4(), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("chase not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestSnapshotChaseStandalone(t *testing.T) {
	// Chase of the single snapshot db2013 of Figure 1: Ada's salary is
	// known (18k), Bob's is a fresh null.
	m := paperex.EmploymentMapping()
	src := instance.NewSnapshot()
	c := paperex.C
	src.Insert(fact.New("E", c("Ada"), c("IBM")))
	src.Insert(fact.New("E", c("Bob"), c("IBM")))
	src.Insert(fact.New("S", c("Ada"), c("18k")))
	var g value.NullGen
	tgt, stats, err := Snapshot(src, m, g.FreshNull, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Len() != 2 {
		t.Fatalf("snapshot chase result: %s", tgt)
	}
	if !tgt.Contains(fact.New("Emp", c("Ada"), c("IBM"), c("18k"))) {
		t.Fatalf("Ada's salary not resolved: %s", tgt)
	}
	if len(tgt.Nulls()) != 1 {
		t.Fatalf("want one null for Bob, got %v", tgt.Nulls())
	}
	if stats.EgdMerges != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestAbstractChaseRejectsIncompleteSource(t *testing.T) {
	var g value.NullGen
	ic := instance.NewConcrete(nil)
	ic.MustInsert(fact.NewC("E", paperex.Iv(1, 3), paperex.C("Ada"), g.FreshAnn(paperex.Iv(1, 3))))
	m := paperex.EmploymentMapping()
	if _, _, err := Abstract(ic.Abstract(), m, nil); err == nil {
		t.Fatal("incomplete source accepted by abstract chase")
	}
}

func TestParallelAbstractChaseAgrees(t *testing.T) {
	ic := paperex.Figure4()
	m := paperex.EmploymentMapping()
	seq, seqStats, err := Abstract(ic.Abstract(), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, parStats, err := AbstractParallel(ic.Abstract(), m, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seqStats.TGDFires != parStats.TGDFires || seqStats.EgdMerges != parStats.EgdMerges {
		t.Fatalf("stats diverge: %+v vs %+v", seqStats, parStats)
	}
	// Snapshots are isomorphic (null ids may differ by scheduling).
	for tp := interval.Time(2010); tp < 2020; tp++ {
		a, b := seq.Snapshot(tp), par.Snapshot(tp)
		if a.Len() != b.Len() {
			t.Fatalf("snapshot size differs at %v: %s vs %s", tp, a, b)
		}
	}
	// Failure also propagates in parallel mode.
	bad := instance.NewConcrete(m.Source)
	bad.MustInsert(fact.NewC("E", paperex.Iv(0, 4), paperex.C("a"), paperex.C("X")))
	bad.MustInsert(fact.NewC("S", paperex.Iv(0, 4), paperex.C("a"), paperex.C("1k")))
	bad.MustInsert(fact.NewC("S", paperex.Iv(2, 4), paperex.C("a"), paperex.C("2k")))
	if _, _, err := AbstractParallel(bad.Abstract(), m, nil, 4); !errors.Is(err, ErrNoSolution) {
		t.Fatalf("parallel failure err = %v", err)
	}
	// Degenerate worker counts fall back gracefully.
	if _, _, err := AbstractParallel(ic.Abstract(), m, nil, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := AbstractParallel(ic.Abstract(), m, nil, 0); err != nil {
		t.Fatal(err)
	}
}
