package chase

import (
	"fmt"

	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/value"
)

// Pointwise runs the abstract chase literally as defined in §3 — one
// independent relational chase per time point — over the bounded horizon
// [0, horizon). It exists to quantify the cost of taking the abstract
// semantics at face value: its running time grows linearly with the
// timeline span even when the instance's fact count is constant, which is
// precisely why implementations must work on the concrete view (§1, §4).
// The segment-wise Abstract chase and the c-chase produce the same
// semantics at a cost independent of the span.
//
// The result is returned as the sequence of per-point snapshots. Facts
// beyond the horizon are ignored; use Abstract for exact results.
func Pointwise(ic *instance.Concrete, m *dependency.Mapping, horizon interval.Time, opts *Options) ([]*instance.Snapshot, Stats, error) {
	cm, err := CompileMapping(m)
	if err != nil {
		return nil, Stats{}, err
	}
	var total Stats
	gen := opts.gen()
	ctx := opts.ctx()
	out := make([]*instance.Snapshot, 0, int(horizon))
	for tp := interval.Time(0); tp < horizon; tp++ {
		if err := ctxErr(ctx); err != nil {
			return nil, total, err
		}
		src := instance.NewSnapshot()
		for _, f := range ic.Facts() {
			if af, ok := f.Project(tp); ok {
				for _, v := range af.Args {
					if !v.IsConst() {
						return nil, total, fmt.Errorf("chase: pointwise source must be complete, found %v at %v", v, tp)
					}
				}
				src.Insert(af)
			}
		}
		point := tp
		fresh := func() value.Value { return value.NewProjectedNull(gen.Fresh(), point) }
		tgt, stats, err := snapshotCompiled(src, cm, fresh, opts)
		total.TGDHoms += stats.TGDHoms
		total.TGDFires += stats.TGDFires
		total.FactsCreated += stats.FactsCreated
		total.NullsCreated += stats.NullsCreated
		total.EgdRounds += stats.EgdRounds
		total.EgdMerges += stats.EgdMerges
		if err != nil {
			return nil, total, fmt.Errorf("at time point %v: %w", tp, err)
		}
		out = append(out, tgt)
	}
	return out, total, nil
}

// Dilate scales every time point of an instance by factor k — the same
// facts and overlap structure spread over a k-times longer timeline. The
// pointwise chase slows down linearly in k; the segment-wise and concrete
// chases do not. Unbounded end points stay unbounded.
func Dilate(ic *instance.Concrete, k interval.Time) *instance.Concrete {
	out := instance.NewConcrete(ic.Schema())
	for _, f := range ic.Facts() {
		end := f.T.End
		if end != interval.Infinity {
			end = end * k
		}
		nf := f.WithInterval(interval.Interval{Start: f.T.Start * k, End: end})
		out.MustInsert(nf)
	}
	return out
}
