package chase

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dependency"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/value"
)

// AbstractParallel is Abstract with segment-level parallelism: segments
// of the abstract view are independent (the dependencies are
// non-temporal, §3), so their chases run concurrently on a worker pool.
// workers ≤ 0 selects GOMAXPROCS. The result is deterministic and equal
// to the sequential Abstract up to null family ids (the shared generator
// is atomic, so ids depend on scheduling; snapshots are isomorphic).
//
// Interning is shared-nothing: each worker owns a private value.Interner
// used for every snapshot it chases, so workers never contend on one
// interner lock, and a worker amortizes the interning of the constants
// shared by its segments instead of rebuilding a fresh interner per
// segment. Segment results cross the merge boundary as value-level facts
// (never raw IDs), so no ID reconciliation is needed. An Options.Interner
// override is honored only for the sequential path — worker-private
// interners are what make the parallel path scale.
func AbstractParallel(ia *instance.Abstract, m *dependency.Mapping, opts *Options, workers int) (*instance.Abstract, Stats, error) {
	cm, err := CompileMapping(m)
	if err != nil {
		return nil, Stats{}, err
	}
	return AbstractParallelCompiled(ia, cm, opts, workers)
}

// AbstractParallelCompiled is AbstractParallel against a pre-compiled
// mapping, which the workers share read-only — the compile-once entry
// point, mirroring ConcreteCompiled.
func AbstractParallelCompiled(ia *instance.Abstract, cm *Compiled, opts *Options, workers int) (*instance.Abstract, Stats, error) {
	segsIn := ia.Segments()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(segsIn) {
		workers = len(segsIn)
	}
	if workers <= 1 {
		return abstractCompiled(ia, cm, opts)
	}
	gen := opts.gen()
	ctx := opts.ctx()

	results := make([]segResult, len(segsIn))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The worker's interner shard: private, lock-uncontended, and
			// threaded through Options so every instance the segment
			// chases build (targets, rewrites) shares it.
			wopts := opts.withInterner(value.NewInterner())
			for idx := range jobs {
				// A canceled context stops each worker at its next segment
				// (and mid-segment through the chase's own checks).
				if err := ctxErr(ctx); err != nil {
					results[idx] = segResult{err: err}
					continue
				}
				results[idx] = chaseSegment(segsIn[idx], cm, gen, wopts)
			}
		}()
	}
	for i := range segsIn {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	var total Stats
	segs := make([]instance.Segment, len(segsIn))
	for i, r := range results {
		total.TGDHoms += r.stats.TGDHoms
		total.TGDFires += r.stats.TGDFires
		total.FactsCreated += r.stats.FactsCreated
		total.NullsCreated += r.stats.NullsCreated
		total.EgdRounds += r.stats.EgdRounds
		total.EgdMerges += r.stats.EgdMerges
		total.RowsRewritten += r.stats.RowsRewritten
		if r.err != nil {
			return nil, total, r.err
		}
		segs[i] = r.seg
	}
	out, err := instance.NewAbstract(segs)
	if err != nil {
		return nil, total, err
	}
	return out, total, nil
}

// segResult is the outcome of chasing one segment.
type segResult struct {
	seg   instance.Segment
	stats Stats
	err   error
}

// chaseSegment chases one segment's representative snapshot, returning
// the target segment. The source snapshot adopts the Options interner
// when one is set (the parallel path's worker shard), so repeated
// segments reuse already-interned constants.
func chaseSegment(seg instance.Segment, cm *Compiled, gen *value.NullGen, opts *Options) (res segResult) {
	src := instance.NewSnapshotWith(opts.interner(nil))
	for _, f := range seg.Facts {
		for _, v := range f.Args {
			if !v.IsConst() {
				res.err = fmt.Errorf("chase: abstract source must be complete, found %v in segment %v", v, seg.Iv)
				return res
			}
		}
		src.Insert(fact.New(f.Rel, f.Args...))
	}
	segIv := seg.Iv
	fresh := func() value.Value { return gen.FreshAnn(segIv) }
	tgtSnap, stats, err := snapshotCompiled(src, cm, fresh, opts)
	res.stats = stats
	if err != nil {
		res.err = fmt.Errorf("in segment %v: %w", seg.Iv, err)
		return res
	}
	tgtSeg := instance.Segment{Iv: segIv}
	for _, f := range tgtSnap.Facts() {
		tgtSeg.Facts = append(tgtSeg.Facts, fact.NewC(f.Rel, segIv, f.Args...))
	}
	res.seg = tgtSeg
	return res
}
