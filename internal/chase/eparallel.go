package chase

import (
	"context"
	"sync"

	"repro/internal/logic"
	"repro/internal/storage"
	"repro/internal/value"
)

// The partitioned parallel egd phase.
//
// An egd round has three parts: renormalize the target w.r.t. the egd
// bodies (Smart strategy), scan every egd body for merge candidates, and
// rewrite the target through the union-find. The first two are
// enumeration-heavy and read-only, so they parallelize the same way the
// tgd phase does: the intermediate target is frozen (all lazy structures
// built, reads mutation-free), each worker sweeps one contiguous shard of
// every conjunction via logic.ForEachIDsPartMulti, and the shards
// concatenate in worker-rank order to exactly the sequential enumeration
// order.
//
// Byte-identical output to the sequential chase is preserved because the
// order-sensitive state never leaves the merge step:
//
//   - Renormalization (normalize.ForEgdPhaseWorkers): workers collect
//     candidate match sets per renamed conjunction; the merge replays the
//     hash-dedup over the rank-ordered concatenation, reproducing the
//     sequential set list, and fragmentation runs sequentially on it.
//
//   - Merge-candidate scan (collectEgdPairs below): workers record the
//     raw (X1, X2) ID pairs of every match; the replay walks them in
//     (egd, worker-rank, shard) order, applying canon/union against the
//     round's union-find exactly as the sequential scan would during
//     enumeration — same merge sequence, same canonical representatives,
//     same first failure, same trace events.
//
//   - The rewrite (SubstituteIDs) stays sequential. A frozen store
//     forbids substitution, so the round rewrites a Clone — Store.Clone
//     preserves the physical layout (segments, row numbering, dedup
//     state) exactly, which keeps the rewritten instance byte-identical
//     to the sequential in-place rewrite.
//
// Stepwise egd application (EgdStepwise) re-searches after every single
// merge, so its scans stay sequential — the parallel scan would
// enumerate the whole round to apply one merge. Rounds over targets
// below parallelCutoffFacts also stay sequential, where the freeze +
// fan-out overhead dominates.

// egdScanSpec describes one egd for the sharded merge-candidate scan:
// the body to enumerate and the two equated variables to project out of
// each match.
type egdScanSpec struct {
	body   logic.Conjunction
	x1, x2 string
}

// egdShard is one worker's share of the merge-candidate scan: per egd,
// the flat (b1, b2) ID pairs of shard w in enumeration order. Pairs with
// b1 == b2 are dropped at the source — the replay's canon check would
// skip them unconditionally.
type egdShard struct {
	pairs [][]value.ID
	err   error
}

// collectEgdPairs fans the merge-candidate scan out over workers shards.
// st must be frozen. The returned shards replay in (egd, worker-rank)
// order to the sequential scan's candidate stream.
func collectEgdPairs(ctx context.Context, st *storage.Store, specs []egdScanSpec, workers int) ([]egdShard, error) {
	bodies := make([]logic.Conjunction, len(specs))
	for i := range specs {
		bodies[i] = specs[i].body
	}
	shards := make([]egdShard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shards[w] = enumerateEgdShard(ctx, st, specs, bodies, w, workers)
		}(w)
	}
	wg.Wait()
	for w := range shards {
		if err := shards[w].err; err != nil {
			return nil, err
		}
	}
	return shards, nil
}

// enumerateEgdShard runs one worker: shard w of every egd body against
// the frozen target, recording the equated-variable ID pairs per match.
func enumerateEgdShard(ctx context.Context, st *storage.Store, specs []egdScanSpec, bodies []logic.Conjunction, w, workers int) (out egdShard) {
	out.pairs = make([][]value.ID, len(specs))
	seen := 0
	logic.ForEachIDsPartMulti(st, bodies, w, workers, func(ci int, m *logic.IDMatch) bool {
		seen++
		if seen&ctxCheckMask == 0 {
			if out.err = ctxErr(ctx); out.err != nil {
				return false
			}
		}
		b1, _ := m.ID(specs[ci].x1)
		b2, _ := m.ID(specs[ci].x2)
		if b1 == b2 {
			return true
		}
		out.pairs[ci] = append(out.pairs[ci], b1, b2)
		return true
	})
	return out
}
