// Package chase implements the two chase procedures of the paper: the
// abstract chase, applied snapshot-wise to the abstract view (§3), and
// the concrete chase (c-chase) on concrete instances (§4.3, Definition
// 16). A successful c-chase materializes a concrete solution Jc whose
// semantics ⟦Jc⟧ is a universal solution for ⟦Ic⟧ (Theorem 19); a failing
// chase proves no solution exists.
package chase

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/normalize"
	"repro/internal/value"
)

// ErrNoSolution is wrapped by every failure of an egd chase step that
// equates two distinct constants: by Proposition 4/Theorem 19 no solution
// exists for the source instance.
var ErrNoSolution = errors.New("chase: no solution exists")

// FailError carries the details of a failing egd chase step.
type FailError struct {
	Dep    string      // label of the violated egd
	V1, V2 value.Value // the two distinct constants being equated
}

func (e *FailError) Error() string {
	return fmt.Sprintf("chase: egd %s equates distinct constants %v and %v: no solution exists", e.Dep, e.V1, e.V2)
}

// Unwrap makes errors.Is(err, ErrNoSolution) work.
func (e *FailError) Unwrap() error { return ErrNoSolution }

// EgdStrategy selects how equality generating dependencies are applied.
type EgdStrategy int

const (
	// EgdBatch collects every violated equality in a round, merges them
	// in one union-find pass, and rewrites the instance once per round
	// (the default; asymptotically cheaper).
	EgdBatch EgdStrategy = iota
	// EgdStepwise applies one equality at a time and re-searches, the
	// textbook chase-step formulation. Used as the ablation baseline.
	EgdStepwise
)

func (s EgdStrategy) String() string {
	if s == EgdStepwise {
		return "stepwise"
	}
	return "batch"
}

// Options configures a chase run. The zero value is the default
// configuration: Algorithm 1 normalization, batch egd application, no
// final coalescing.
type Options struct {
	// Norm selects the normalization algorithm (paper §4.2).
	Norm normalize.Strategy
	// Egd selects the egd application strategy.
	Egd EgdStrategy
	// Coalesce coalesces the solution before returning it, restoring the
	// compact form of the paper's Figure 9.
	Coalesce bool
	// Gen supplies null family ids; a private generator is used when nil.
	Gen *value.NullGen
	// Interner, when set, is the value interner used for the instances the
	// chase materializes (the target, normalization outputs, egd rewrites).
	// When nil the normalized source's interner is shared, which keeps all
	// rows of one run ID-compatible — the sensible default; set it to share
	// the value domain across runs. AbstractParallel ignores the override:
	// its workers always intern into private shards (see AbstractParallel).
	Interner *value.Interner
	// Workers sets the worker count for the partitioned parallel concrete
	// chase: both phases shard their expensive enumerations into
	// contiguous ranges, one per worker, over a frozen instance, and merge
	// the shards in worker-rank order — the result is byte-identical to
	// the sequential chase. In the tgd phase the homomorphism enumeration
	// over the (frozen) normalized source fans out with per-worker private
	// target stores; in the egd phase each round freezes the intermediate
	// target, the match-set enumeration of the renormalization and the egd
	// merge-candidate scans fan out, and the union-find replay plus the
	// rewrite stay sequential (see eparallel.go). 0 or 1 runs sequentially
	// (the internal default; the tdx facade maps WithParallelism onto this
	// field, resolving 0 to GOMAXPROCS there). Inputs below an internal
	// cutoff, and stepwise egd rounds (EgdStepwise), always run
	// sequentially.
	Workers int
	// Trace, when set, receives one Event per chase action (normalization
	// passes, tgd firings, egd merges, failures). For debugging and the
	// CLI's -trace flag; adds no cost when nil. Event order and count are
	// deterministic at any Workers setting, but the parallel tgd phase
	// abbreviates the detail text of tgd-fire events (it fires from
	// recorded rows, not bindings).
	Trace func(Event)
	// Ctx, when set, is checked throughout the chase loops — normalization
	// passes, tgd firing rounds, egd match enumeration and rewrite rounds —
	// so long chases can be canceled or deadline-bounded. On cancellation
	// the chase stops promptly and returns an error wrapping ctx.Err();
	// instances under construction are abandoned and the caller's source
	// instance is never mutated (the chase never writes to it). Nil means
	// context.Background (never canceled).
	Ctx context.Context
	// DeltaBaseRowLimit bounds how many retained base-solution rows one
	// incremental (delta) chase may rewrite through egd merges before it
	// abandons the fast path and re-chases the combined source from
	// scratch (Stats.FallbackFullChase reports that it did). 0 means
	// DefaultDeltaBaseRowLimit; negative means unlimited. Ignored by
	// non-delta runs.
	DeltaBaseRowLimit int
	// FireCounts, when non-nil, receives per-tgd firing counts: entry i is
	// incremented once per chase step of the i-th tgd (mapping order) that
	// actually fired. The incremental delta chase records the base run's
	// counts this way to decide which delta orderings are provably
	// byte-identical to a full re-chase. Must have one entry per tgd.
	FireCounts []int
}

// DefaultDeltaBaseRowLimit is the delta-chase base-row rewrite budget
// used when Options.DeltaBaseRowLimit is 0: past this many rewritten
// base rows the incremental run is likely no cheaper than a re-chase,
// so it falls back.
const DefaultDeltaBaseRowLimit = 256

func (o *Options) deltaBaseRowLimit() int {
	if o == nil || o.DeltaBaseRowLimit == 0 {
		return DefaultDeltaBaseRowLimit
	}
	return o.DeltaBaseRowLimit
}

// recordFire bumps the per-tgd firing counter when the caller wired one.
func (o *Options) recordFire(di int) {
	if o != nil && o.FireCounts != nil {
		o.FireCounts[di]++
	}
}

func (o *Options) gen() *value.NullGen {
	if o == nil || o.Gen == nil {
		return &value.NullGen{}
	}
	return o.Gen
}

func (o *Options) norm() normalize.Strategy {
	if o == nil {
		return normalize.StrategySmart
	}
	return o.Norm
}

func (o *Options) egd() EgdStrategy {
	if o == nil {
		return EgdBatch
	}
	return o.Egd
}

func (o *Options) coalesce() bool { return o != nil && o.Coalesce }

// interner returns the interner for chase-built instances: the Options
// override when set, else def (the source's interner).
func (o *Options) interner(def *value.Interner) *value.Interner {
	if o != nil && o.Interner != nil {
		return o.Interner
	}
	return def
}

// withInterner returns a copy of the options with the interner replaced
// — the parallel chase hands each worker its own shard this way. The
// receiver may be nil.
func (o *Options) withInterner(in *value.Interner) *Options {
	var c Options
	if o != nil {
		c = *o
	}
	c.Interner = in
	return &c
}

// workers returns the configured chase worker count (both phases);
// anything below 2 means sequential.
func (o *Options) workers() int {
	if o == nil || o.Workers < 2 {
		return 1
	}
	return o.Workers
}

// tracing reports whether a trace hook is installed, so hot loops can
// skip argument evaluation for emit entirely.
func (o *Options) tracing() bool { return o != nil && o.Trace != nil }

// ctx returns the run's context, Background when none was configured.
func (o *Options) ctx() context.Context {
	if o == nil || o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// ctxErr reports the context's error without blocking: nil while the
// context is live, a wrapped ctx.Err() once it is done. Hot loops call it
// every few dozen iterations through a counter; Background's nil Done
// channel makes the check a single select with an always-ready default.
func ctxErr(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return fmt.Errorf("chase: %w", ctx.Err())
	default:
		return nil
	}
}

// ctxCheckMask throttles in-loop context checks: positions with
// (i & ctxCheckMask) == 0 pay the select. 64 keeps cancellation latency
// in the microseconds while adding nothing measurable to the loops.
const ctxCheckMask = 63

// Stats reports what a chase run did, for the experiment harness. The
// JSON encoding uses stable lowerCamel field names — it is the wire form
// shared by tdxd run responses and the CLI's -json -stats output, so the
// names are a compatibility surface: add fields freely, never rename.
type Stats struct {
	NormalizedSourceFacts int `json:"normalizedSourceFacts"` // source facts after normalization
	TGDHoms               int `json:"tgdHoms"`               // homomorphisms found for s-t tgd bodies
	TGDFires              int `json:"tgdFires"`              // tgd chase steps that actually fired
	FactsCreated          int `json:"factsCreated"`          // target facts added by tgd steps
	NullsCreated          int `json:"nullsCreated"`          // fresh interval-annotated nulls
	EgdRounds             int `json:"egdRounds"`             // egd rounds (normalize + merge + rewrite)
	EgdMerges             int `json:"egdMerges"`             // value identifications applied
	NormalizeRuns         int `json:"normalizeRuns"`         // normalization passes over the target
	RowsRewritten         int `json:"rowsRewritten"`         // rows touched by incremental egd rewrites
	TGDWorkers            int `json:"tgdWorkers"`            // workers the tgd phase used (1 = sequential)
	EgdWorkers            int `json:"egdWorkers"`            // max workers any egd round used (1 = sequential)

	// Incremental (delta) chase observability; zero on full runs.
	DeltaFacts        int  `json:"deltaFacts"`        // genuinely new source facts the delta contributed
	DeltaFires        int  `json:"deltaFires"`        // tgd steps fired from delta-involving homomorphisms
	BaseRowsRewritten int  `json:"baseRowsRewritten"` // retained base-solution rows rewritten by delta egd merges
	FallbackFullChase bool `json:"fallbackFullChase"` // the delta run gave up and re-chased base+delta from scratch
}

// valueUF is an integer union-find over interned value IDs with constant
// absorption: the canonical representative of a class containing a
// constant is that constant; two distinct constants in one class are a
// chase failure. Storage is sparse: IDs are mapped to dense slots on
// first touch, so memory is proportional to the values actually merged,
// not to the ID space — essential when the interner is long-lived (the
// parallel chase's worker shards accumulate IDs across segments). The
// tree structure is merged by rank and find uses iterative path halving
// (no recursion, so arbitrarily long merge chains cannot overflow the
// stack); the *canonical* representative of each class is tracked
// separately per root, because the chase needs a deterministic output —
// the smallest value of the class by value.Compare (a constant when
// present) — independent of union order and tree shape.
type valueUF struct {
	in      *value.Interner
	slot    map[value.ID]int32 // ID → dense slot; absent = never touched
	parent  []int32
	rank    []uint8
	repr    []value.ID // per root slot: the canonical representative
	changed []value.ID // IDs that stopped being canonical, in merge order
	merges  int
}

func newValueUF(in *value.Interner) *valueUF { return &valueUF{in: in} }

// ensure returns id's dense slot, allocating one on first touch.
func (u *valueUF) ensure(id value.ID) int32 {
	if id == value.NoID {
		// A NoID here means a caller fed an unbound variable into the
		// union-find, which the egd loops guard against.
		panic("chase: NoID in union-find")
	}
	if u.slot == nil {
		u.slot = make(map[value.ID]int32)
	}
	s, ok := u.slot[id]
	if !ok {
		s = int32(len(u.parent))
		u.slot[id] = s
		u.parent = append(u.parent, s)
		u.rank = append(u.rank, 0)
		u.repr = append(u.repr, id)
	}
	return s
}

// findSlot returns the root slot of s's class, compressing the path.
func (u *valueUF) findSlot(s int32) int32 {
	for u.parent[s] != s {
		u.parent[s] = u.parent[u.parent[s]] // path halving
		s = u.parent[s]
	}
	return s
}

// find returns the root slot of id's class.
func (u *valueUF) find(id value.ID) int32 { return u.findSlot(u.ensure(id)) }

// canon returns the canonical representative of id's class (id itself if
// never merged).
func (u *valueUF) canon(id value.ID) value.ID {
	s, ok := u.slot[id]
	if !ok {
		return id
	}
	return u.repr[u.findSlot(s)]
}

// isConst reports whether an ID denotes a constant, without
// materializing the value.
func (u *valueUF) isConst(id value.ID) bool { return u.in.KindOf(id) == value.Const }

// union merges the classes of a and b. It fails exactly when that would
// equate two distinct constants (the failing egd chase step of
// Definition 16).
func (u *valueUF) union(a, b value.ID) error {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return nil
	}
	va, vb := u.repr[ra], u.repr[rb]
	ca, cb := u.isConst(va), u.isConst(vb)
	var rep value.ID
	switch {
	case ca && cb:
		return fmt.Errorf("cannot equate constants %v and %v", u.in.Resolve(va), u.in.Resolve(vb))
	case ca:
		rep = va
	case cb:
		rep = vb
	default:
		// Both nulls: deterministic representative (smaller value wins) so
		// chase output does not depend on iteration order.
		if value.Compare(u.in.Resolve(va), u.in.Resolve(vb)) < 0 {
			rep = va
		} else {
			rep = vb
		}
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.repr[ra] = rep
	// Exactly one previously-canonical value loses canonicity per union
	// (a non-canonical ID never becomes canonical again), so changed
	// accumulates the full substitution domain without duplicates.
	if rep == va {
		u.changed = append(u.changed, vb)
	} else {
		u.changed = append(u.changed, va)
	}
	u.merges++
	return nil
}

// substituted returns the IDs whose canonical representative differs
// from themselves — the domain of the substitution this union-find
// encodes. The slice is owned by the union-find; do not mutate.
func (u *valueUF) substituted() []value.ID { return u.changed }

// dirty reports whether any merge has been recorded.
func (u *valueUF) dirty() bool { return u.merges > 0 }

// EventKind classifies trace events.
type EventKind int

const (
	// EventNormalize reports a normalization pass and its output size.
	EventNormalize EventKind = iota
	// EventTGDFire reports one s-t tgd chase step.
	EventTGDFire
	// EventEgdMerge reports one value identification by an egd.
	EventEgdMerge
	// EventEgdFail reports the failing egd step (no solution).
	EventEgdFail
)

func (k EventKind) String() string {
	switch k {
	case EventNormalize:
		return "normalize"
	case EventTGDFire:
		return "tgd-fire"
	case EventEgdMerge:
		return "egd-merge"
	case EventEgdFail:
		return "egd-fail"
	}
	return "unknown"
}

// Event is one step of a chase run, delivered to Options.Trace.
type Event struct {
	Kind   EventKind
	Dep    string // dependency label, when applicable
	Detail string // human-readable specifics
}

func (e Event) String() string {
	if e.Dep != "" {
		return fmt.Sprintf("%s %s: %s", e.Kind, e.Dep, e.Detail)
	}
	return fmt.Sprintf("%s: %s", e.Kind, e.Detail)
}

// emit delivers an event to the trace hook when one is installed.
func (o *Options) emit(kind EventKind, dep, format string, args ...any) {
	if o == nil || o.Trace == nil {
		return
	}
	o.Trace(Event{Kind: kind, Dep: dep, Detail: fmt.Sprintf(format, args...)})
}
