// Package chase implements the two chase procedures of the paper: the
// abstract chase, applied snapshot-wise to the abstract view (§3), and
// the concrete chase (c-chase) on concrete instances (§4.3, Definition
// 16). A successful c-chase materializes a concrete solution Jc whose
// semantics ⟦Jc⟧ is a universal solution for ⟦Ic⟧ (Theorem 19); a failing
// chase proves no solution exists.
package chase

import (
	"errors"
	"fmt"

	"repro/internal/normalize"
	"repro/internal/value"
)

// ErrNoSolution is wrapped by every failure of an egd chase step that
// equates two distinct constants: by Proposition 4/Theorem 19 no solution
// exists for the source instance.
var ErrNoSolution = errors.New("chase: no solution exists")

// FailError carries the details of a failing egd chase step.
type FailError struct {
	Dep    string      // label of the violated egd
	V1, V2 value.Value // the two distinct constants being equated
}

func (e *FailError) Error() string {
	return fmt.Sprintf("chase: egd %s equates distinct constants %v and %v: no solution exists", e.Dep, e.V1, e.V2)
}

// Unwrap makes errors.Is(err, ErrNoSolution) work.
func (e *FailError) Unwrap() error { return ErrNoSolution }

// EgdStrategy selects how equality generating dependencies are applied.
type EgdStrategy int

const (
	// EgdBatch collects every violated equality in a round, merges them
	// in one union-find pass, and rewrites the instance once per round
	// (the default; asymptotically cheaper).
	EgdBatch EgdStrategy = iota
	// EgdStepwise applies one equality at a time and re-searches, the
	// textbook chase-step formulation. Used as the ablation baseline.
	EgdStepwise
)

func (s EgdStrategy) String() string {
	if s == EgdStepwise {
		return "stepwise"
	}
	return "batch"
}

// Options configures a chase run. The zero value is the default
// configuration: Algorithm 1 normalization, batch egd application, no
// final coalescing.
type Options struct {
	// Norm selects the normalization algorithm (paper §4.2).
	Norm normalize.Strategy
	// Egd selects the egd application strategy.
	Egd EgdStrategy
	// Coalesce coalesces the solution before returning it, restoring the
	// compact form of the paper's Figure 9.
	Coalesce bool
	// Gen supplies null family ids; a private generator is used when nil.
	Gen *value.NullGen
	// Trace, when set, receives one Event per chase action (normalization
	// passes, tgd firings, egd merges, failures). For debugging and the
	// CLI's -trace flag; adds no cost when nil.
	Trace func(Event)
}

func (o *Options) gen() *value.NullGen {
	if o == nil || o.Gen == nil {
		return &value.NullGen{}
	}
	return o.Gen
}

func (o *Options) norm() normalize.Strategy {
	if o == nil {
		return normalize.StrategySmart
	}
	return o.Norm
}

func (o *Options) egd() EgdStrategy {
	if o == nil {
		return EgdBatch
	}
	return o.Egd
}

func (o *Options) coalesce() bool { return o != nil && o.Coalesce }

// Stats reports what a chase run did, for the experiment harness.
type Stats struct {
	NormalizedSourceFacts int // source facts after normalization
	TGDHoms               int // homomorphisms found for s-t tgd bodies
	TGDFires              int // tgd chase steps that actually fired
	FactsCreated          int // target facts added by tgd steps
	NullsCreated          int // fresh interval-annotated nulls
	EgdRounds             int // egd rounds (normalize + merge + rewrite)
	EgdMerges             int // value identifications applied
	NormalizeRuns         int // normalization passes over the target
}

// valueUF is a union-find over database values with constant absorption:
// the representative of a class containing a constant is that constant;
// two distinct constants in one class are a chase failure.
type valueUF struct {
	parent map[value.Value]value.Value
}

func newValueUF() *valueUF { return &valueUF{parent: make(map[value.Value]value.Value)} }

// find returns the representative of v (v itself if never merged).
func (u *valueUF) find(v value.Value) value.Value {
	p, ok := u.parent[v]
	if !ok {
		return v
	}
	root := u.find(p)
	u.parent[v] = root
	return root
}

// union merges the classes of a and b. It fails exactly when that would
// equate two distinct constants (the failing egd chase step of
// Definition 16).
func (u *valueUF) union(a, b value.Value) error {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return nil
	}
	switch {
	case ra.IsConst() && rb.IsConst():
		return fmt.Errorf("cannot equate constants %v and %v", ra, rb)
	case ra.IsConst():
		u.parent[rb] = ra
	case rb.IsConst():
		u.parent[ra] = rb
	default:
		// Both nulls: deterministic representative (smaller value wins) so
		// chase output does not depend on iteration order.
		if value.Compare(ra, rb) < 0 {
			u.parent[rb] = ra
		} else {
			u.parent[ra] = rb
		}
	}
	return nil
}

// dirty reports whether any merge has been recorded.
func (u *valueUF) dirty() bool { return len(u.parent) > 0 }

// EventKind classifies trace events.
type EventKind int

const (
	// EventNormalize reports a normalization pass and its output size.
	EventNormalize EventKind = iota
	// EventTGDFire reports one s-t tgd chase step.
	EventTGDFire
	// EventEgdMerge reports one value identification by an egd.
	EventEgdMerge
	// EventEgdFail reports the failing egd step (no solution).
	EventEgdFail
)

func (k EventKind) String() string {
	switch k {
	case EventNormalize:
		return "normalize"
	case EventTGDFire:
		return "tgd-fire"
	case EventEgdMerge:
		return "egd-merge"
	case EventEgdFail:
		return "egd-fail"
	}
	return "unknown"
}

// Event is one step of a chase run, delivered to Options.Trace.
type Event struct {
	Kind   EventKind
	Dep    string // dependency label, when applicable
	Detail string // human-readable specifics
}

func (e Event) String() string {
	if e.Dep != "" {
		return fmt.Sprintf("%s %s: %s", e.Kind, e.Dep, e.Detail)
	}
	return fmt.Sprintf("%s: %s", e.Kind, e.Detail)
}

// emit delivers an event to the trace hook when one is installed.
func (o *Options) emit(kind EventKind, dep, format string, args ...any) {
	if o == nil || o.Trace == nil {
		return
	}
	o.Trace(Event{Kind: kind, Dep: dep, Detail: fmt.Sprintf(format, args...)})
}
