package chase

import (
	"fmt"

	"repro/internal/dependency"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/value"
)

// Snapshot runs the standard relational chase of Fagin et al. on a single
// snapshot: all s-t tgd steps against the (static) source snapshot,
// followed by egd steps to a fixpoint. freshNull supplies the labeled
// null created per existential variable per firing. The source snapshot
// is never modified.
//
// This is the per-snapshot building block of the abstract chase (§3): the
// paper applies it independently to every db_ℓ of the abstract instance.
func Snapshot(src *instance.Snapshot, m *dependency.Mapping, freshNull func() value.Value, opts *Options) (*instance.Snapshot, Stats, error) {
	var stats Stats
	tgt := instance.NewSnapshot()

	// TGD phase: bodies read only the source, so one pass over all
	// homomorphisms reaches the fixpoint.
	for _, d := range m.TGDs {
		ms := logic.FindAll(src.Store(), d.Body, nil)
		stats.TGDHoms += len(ms)
		for _, h := range ms {
			if logic.Exists(tgt.Store(), d.Head, h.Binding) {
				continue // an extension to the head already exists
			}
			stats.TGDFires++
			ext := h.Binding.Clone()
			for _, y := range d.Existentials() {
				ext[y] = freshNull()
				stats.NullsCreated++
			}
			for _, atom := range d.Head {
				args := make([]value.Value, len(atom.Terms))
				for i, t := range atom.Terms {
					v, ok := ext.Apply(t)
					if !ok {
						return nil, stats, fmt.Errorf("chase: unbound head variable %v in tgd %s", t, d.Name)
					}
					args[i] = v
				}
				if tgt.Insert(fact.New(atom.Rel, args...)) {
					stats.FactsCreated++
				}
			}
		}
	}

	// EGD phase.
	out, egdStats, err := snapshotEgds(tgt, m, opts.egd())
	stats.EgdRounds, stats.EgdMerges = egdStats.EgdRounds, egdStats.EgdMerges
	return out, stats, err
}

// snapshotEgds applies the egds of m to the snapshot until satisfied.
func snapshotEgds(tgt *instance.Snapshot, m *dependency.Mapping, strat EgdStrategy) (*instance.Snapshot, Stats, error) {
	var stats Stats
	for {
		stats.EgdRounds++
		uf := newValueUF()
		fail := func(d dependency.EGD, v1, v2 value.Value) error {
			return &FailError{Dep: d.Name, V1: v1, V2: v2}
		}
		stop := false
		var stepErr error
		for _, d := range m.EGDs {
			logic.ForEach(tgt.Store(), d.Body, nil, func(h logic.Match) bool {
				v1, v2 := uf.find(h.Binding[d.X1]), uf.find(h.Binding[d.X2])
				if v1 == v2 {
					return true
				}
				if v1.IsConst() && v2.IsConst() {
					stepErr = fail(d, v1, v2)
					return false
				}
				if err := uf.union(v1, v2); err != nil {
					stepErr = fail(d, v1, v2)
					return false
				}
				stats.EgdMerges++
				stop = strat == EgdStepwise // one merge per round
				return !stop
			})
			if stepErr != nil {
				return nil, stats, stepErr
			}
			if stop {
				break
			}
		}
		if !uf.dirty() {
			return tgt, stats, nil
		}
		tgt = rewriteSnapshot(tgt, uf)
	}
}

// rewriteSnapshot applies the union-find substitution to every fact.
func rewriteSnapshot(s *instance.Snapshot, uf *valueUF) *instance.Snapshot {
	out := instance.NewSnapshot()
	for _, f := range s.Facts() {
		args := make([]value.Value, len(f.Args))
		for i, v := range f.Args {
			args[i] = uf.find(v)
		}
		out.Insert(fact.New(f.Rel, args...))
	}
	return out
}
