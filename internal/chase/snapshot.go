package chase

import (
	"fmt"

	"repro/internal/dependency"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/value"
)

// Snapshot runs the standard relational chase of Fagin et al. on a single
// snapshot: all s-t tgd steps against the (static) source snapshot,
// followed by egd steps to a fixpoint. freshNull supplies the labeled
// null created per existential variable per firing. The source snapshot
// is never modified.
//
// This is the per-snapshot building block of the abstract chase (§3): the
// paper applies it independently to every db_ℓ of the abstract instance.
func Snapshot(src *instance.Snapshot, m *dependency.Mapping, freshNull func() value.Value, opts *Options) (*instance.Snapshot, Stats, error) {
	var stats Stats
	// Share the source snapshot's interner (or the Options override) so
	// the tgd phase's Exists probes and the egd phase's rewrites stay
	// ID-compatible.
	tgt := instance.NewSnapshotWith(opts.interner(src.Interner()))

	// TGD phase: bodies read only the source, so one pass over all
	// homomorphisms reaches the fixpoint.
	for _, d := range m.TGDs {
		ms := logic.FindAll(src.Store(), d.Body, nil)
		stats.TGDHoms += len(ms)
		for _, h := range ms {
			if logic.Exists(tgt.Store(), d.Head, h.Binding) {
				continue // an extension to the head already exists
			}
			stats.TGDFires++
			ext := h.Binding.Clone()
			for _, y := range d.Existentials() {
				ext[y] = freshNull()
				stats.NullsCreated++
			}
			for _, atom := range d.Head {
				args := make([]value.Value, len(atom.Terms))
				for i, t := range atom.Terms {
					v, ok := ext.Apply(t)
					if !ok {
						return nil, stats, fmt.Errorf("chase: unbound head variable %v in tgd %s", t, d.Name)
					}
					args[i] = v
				}
				if tgt.Insert(fact.New(atom.Rel, args...)) {
					stats.FactsCreated++
				}
			}
		}
	}

	// EGD phase.
	out, egdStats, err := snapshotEgds(tgt, m, opts.egd())
	stats.EgdRounds, stats.EgdMerges = egdStats.EgdRounds, egdStats.EgdMerges
	stats.RowsRewritten = egdStats.RowsRewritten
	return out, stats, err
}

// snapshotEgds applies the egds of m to the snapshot until satisfied.
func snapshotEgds(tgt *instance.Snapshot, m *dependency.Mapping, strat EgdStrategy) (*instance.Snapshot, Stats, error) {
	var stats Stats
	// Malformed egds (an equated variable missing from the body) would
	// bind to NoID below; reject them up front with a clear error.
	for _, d := range m.EGDs {
		if !d.Body.HasVar(d.X1) || !d.Body.HasVar(d.X2) {
			return nil, stats, fmt.Errorf("chase: egd %s equates %q and %q but its body binds only %v", d.Name, d.X1, d.X2, d.Body.Vars())
		}
	}
	in := tgt.Interner()
	for {
		stats.EgdRounds++
		uf := newValueUF(in)
		stop := false
		var stepErr error
		for _, d := range m.EGDs {
			x1, x2 := d.X1, d.X2
			logic.ForEachIDs(tgt.Store(), d.Body, nil, func(h *logic.IDMatch) bool {
				b1, _ := h.ID(x1)
				b2, _ := h.ID(x2)
				v1, v2 := uf.canon(b1), uf.canon(b2)
				if v1 == v2 {
					return true
				}
				if err := uf.union(v1, v2); err != nil {
					stepErr = &FailError{Dep: d.Name, V1: in.Resolve(v1), V2: in.Resolve(v2)}
					return false
				}
				stats.EgdMerges++
				stop = strat == EgdStepwise // one merge per round
				return !stop
			})
			if stepErr != nil {
				return nil, stats, stepErr
			}
			if stop {
				break
			}
		}
		if !uf.dirty() {
			return tgt, stats, nil
		}
		stats.RowsRewritten += rewriteSnapshot(tgt, uf)
	}
}

// rewriteSnapshot applies the union-find substitution to the snapshot in
// place, touching only the rows that contain a merged ID (see
// rewriteConcrete) and returning how many it rewrote. The snapshot egd
// loop owns its target (Snapshot builds it), so no defensive copy is
// needed.
func rewriteSnapshot(s *instance.Snapshot, uf *valueUF) int {
	return s.Store().SubstituteIDs(uf.substituted(), uf.canon)
}
