package chase

import (
	"fmt"

	"repro/internal/dependency"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/value"
)

// Snapshot runs the standard relational chase of Fagin et al. on a single
// snapshot: all s-t tgd steps against the (static) source snapshot,
// followed by egd steps to a fixpoint. freshNull supplies the labeled
// null created per existential variable per firing. The source snapshot
// is never modified.
//
// This is the per-snapshot building block of the abstract chase (§3): the
// paper applies it independently to every db_ℓ of the abstract instance.
func Snapshot(src *instance.Snapshot, m *dependency.Mapping, freshNull func() value.Value, opts *Options) (*instance.Snapshot, Stats, error) {
	cm, err := CompileMapping(m)
	if err != nil {
		return nil, Stats{}, err
	}
	return snapshotCompiled(src, cm, freshNull, opts)
}

// snapshotCompiled is Snapshot against a pre-compiled mapping — the
// abstract chase compiles once and runs it per segment.
func snapshotCompiled(src *instance.Snapshot, cm *Compiled, freshNull func() value.Value, opts *Options) (*instance.Snapshot, Stats, error) {
	var stats Stats
	ctx := opts.ctx()
	// Share the source snapshot's interner (or the Options override) so
	// the tgd phase's Exists probes and the egd phase's rewrites stay
	// ID-compatible.
	tgt := instance.NewSnapshotWith(opts.interner(src.Interner()))

	// TGD phase: bodies read only the source, so one pass over all
	// homomorphisms reaches the fixpoint.
	for _, d := range cm.tgds {
		if err := ctxErr(ctx); err != nil {
			return nil, stats, err
		}
		ms := logic.FindAll(src.Store(), d.d.Body, nil)
		stats.TGDHoms += len(ms)
		for hi, h := range ms {
			if hi&ctxCheckMask == 0 {
				if err := ctxErr(ctx); err != nil {
					return nil, stats, err
				}
			}
			if logic.Exists(tgt.Store(), d.d.Head, h.Binding) {
				continue // an extension to the head already exists
			}
			stats.TGDFires++
			ext := h.Binding.Clone()
			for _, y := range d.exist {
				ext[y] = freshNull()
				stats.NullsCreated++
			}
			for _, atom := range d.d.Head {
				args := make([]value.Value, len(atom.Terms))
				for i, t := range atom.Terms {
					v, ok := ext.Apply(t)
					if !ok {
						return nil, stats, fmt.Errorf("chase: unbound head variable %v in tgd %s", t, d.d.Name)
					}
					args[i] = v
				}
				if tgt.Insert(fact.New(atom.Rel, args...)) {
					stats.FactsCreated++
				}
			}
		}
	}

	// EGD phase.
	out, egdStats, err := snapshotEgds(tgt, cm, opts)
	stats.EgdRounds, stats.EgdMerges = egdStats.EgdRounds, egdStats.EgdMerges
	stats.RowsRewritten = egdStats.RowsRewritten
	stats.EgdWorkers = egdStats.EgdWorkers
	return out, stats, err
}

// snapshotEgds applies the egds of the compiled mapping to the snapshot
// until satisfied (the snapshot chase matches the plain, non-temporal
// egd bodies). The snapshot egd loop owns its target (Snapshot builds
// it), so rounds rewrite in place; with Options.Workers ≥ 2 a round over
// a large enough snapshot freezes it, fans the merge-candidate scan out
// over worker shards, replays the pairs in rank order (byte-identical to
// the sequential scan; see eparallel.go), and rewrites a layout-
// preserving clone. The returned snapshot may come back frozen then.
func snapshotEgds(tgt *instance.Snapshot, cm *Compiled, opts *Options) (*instance.Snapshot, Stats, error) {
	var stats Stats
	ctx := opts.ctx()
	strat := opts.egd()
	workers := opts.workers()
	in := tgt.Interner()
	stats.EgdWorkers = 1
	for {
		stats.EgdRounds++
		if err := ctxErr(ctx); err != nil {
			return nil, stats, err
		}
		uf := newValueUF(in)
		scanW := 1
		if workers > 1 && len(cm.egds) > 0 && strat != EgdStepwise && tgt.Len() >= parallelCutoffFacts {
			scanW = workers
		}
		if scanW > 1 {
			tgt.Store().Freeze()
			if scanW > stats.EgdWorkers {
				stats.EgdWorkers = scanW
			}
			specs := make([]egdScanSpec, len(cm.egds))
			for i := range cm.egds {
				specs[i] = egdScanSpec{body: cm.egds[i].d.Body, x1: cm.egds[i].d.X1, x2: cm.egds[i].d.X2}
			}
			shards, err := collectEgdPairs(ctx, tgt.Store(), specs, scanW)
			if err != nil {
				return nil, stats, err
			}
			seen := 0
			for di := range cm.egds {
				d := &cm.egds[di]
				for w := 0; w < scanW; w++ {
					pairs := shards[w].pairs[di]
					for i := 0; i < len(pairs); i += 2 {
						seen++
						if seen&ctxCheckMask == 0 {
							if err := ctxErr(ctx); err != nil {
								return nil, stats, err
							}
						}
						v1, v2 := uf.canon(pairs[i]), uf.canon(pairs[i+1])
						if v1 == v2 {
							continue
						}
						if err := uf.union(v1, v2); err != nil {
							return nil, stats, &FailError{Dep: d.d.Name, V1: in.Resolve(v1), V2: in.Resolve(v2)}
						}
						stats.EgdMerges++
					}
				}
			}
		} else {
			stop := false
			seen := 0
			var stepErr error
			for _, d := range cm.egds {
				x1, x2 := d.d.X1, d.d.X2
				logic.ForEachIDs(tgt.Store(), d.d.Body, nil, func(h *logic.IDMatch) bool {
					seen++
					if seen&ctxCheckMask == 0 {
						if stepErr = ctxErr(ctx); stepErr != nil {
							return false
						}
					}
					b1, _ := h.ID(x1)
					b2, _ := h.ID(x2)
					v1, v2 := uf.canon(b1), uf.canon(b2)
					if v1 == v2 {
						return true
					}
					if err := uf.union(v1, v2); err != nil {
						stepErr = &FailError{Dep: d.d.Name, V1: in.Resolve(v1), V2: in.Resolve(v2)}
						return false
					}
					stats.EgdMerges++
					stop = strat == EgdStepwise // one merge per round
					return !stop
				})
				if stepErr != nil {
					return nil, stats, stepErr
				}
				if stop {
					break
				}
			}
		}
		if !uf.dirty() {
			return tgt, stats, nil
		}
		if tgt.Store().Frozen() {
			tgt = tgt.Clone()
		}
		stats.RowsRewritten += rewriteSnapshot(tgt, uf)
	}
}

// rewriteSnapshot applies the union-find substitution to the snapshot in
// place, touching only the rows that contain a merged ID (see
// rewriteConcrete) and returning how many it rewrote. The snapshot egd
// loop owns its target (Snapshot builds it), so no defensive copy is
// needed — only a frozen target (published for a parallel scan) is
// cloned, layout-preserving, before the rewrite.
func rewriteSnapshot(s *instance.Snapshot, uf *valueUF) int {
	return s.Store().SubstituteIDs(uf.substituted(), uf.canon)
}
