package normalize_test

import (
	"fmt"

	"repro/internal/normalize"
	"repro/internal/paperex"

	"repro/internal/logic"
)

// ExampleSmart reproduces the paper's Figure 5: Algorithm 1 applied to
// the Figure 4 instance with respect to the lhs of σ2+.
func ExampleSmart() {
	ic := paperex.Figure4()
	out := normalize.Smart(ic, []logic.Conjunction{paperex.Sigma2Body()})
	fmt.Println(out)
	// Output:
	// E(Ada, Google, [2014,inf))
	// E(Ada, IBM, [2012,2013))
	// E(Ada, IBM, [2013,2014))
	// E(Bob, IBM, [2013,2015))
	// E(Bob, IBM, [2015,2018))
	// S(Ada, 18k, [2013,2014))
	// S(Ada, 18k, [2014,inf))
	// S(Bob, 13k, [2015,2018))
	// S(Bob, 13k, [2018,inf))
}

// ExampleNaive reproduces Figure 6: the naïve normalizer over-fragments
// the same instance to 14 facts.
func ExampleNaive() {
	out := normalize.Naive(paperex.Figure4())
	fmt.Println(out.Len(), "facts")
	// Output:
	// 14 facts
}

// ExampleHasEmptyIntersectionProperty checks Definition 10 before and
// after normalization (Theorem 11).
func ExampleHasEmptyIntersectionProperty() {
	ic := paperex.Figure4()
	phis := []logic.Conjunction{paperex.Sigma2Body()}
	fmt.Println("before:", normalize.HasEmptyIntersectionProperty(ic, phis))
	fmt.Println("after: ", normalize.HasEmptyIntersectionProperty(normalize.Smart(ic, phis), phis))
	// Output:
	// before: false
	// after:  true
}
