package normalize

import (
	"context"
	"slices"
	"sort"
	"sync"

	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
)

// Incremental (delta) normalization support for the semi-naive chase.
//
// The incremental chase retains a frozen normalized base instance and
// needs to answer two questions about a combined instance (base rows
// followed by freshly appended delta rows) without renormalizing the
// base part:
//
//  1. Does appending the delta leave the base fragmentation intact? It
//     does exactly when no surviving match set of N(Φ+) mixes base and
//     delta rows: base-only sets are the base run's own sets (same
//     rows, same intervals), and delta-only sets share no member with
//     them, so the merged components — and therefore the cuts applied
//     to every base fact — are unchanged.
//  2. If so, what does the combined normalization look like? The base
//     fragments verbatim (in their retained order) plus the delta rows
//     fragmented on their delta-only components' cuts, appended per
//     relation in ascending row order — exactly the suffix Algorithm 1
//     would emit, since fragmentSets walks rows in physical order and
//     the delta rows sit after every base row.
//
// deltaMatchSets answers both at once; DeltaSourceNormalize packages
// the construction; DeltaAligned is the egd-phase variant of question 1
// (there the incremental chase must additionally know that the
// delta-involving sets would not fragment anything, i.e. every such set
// has all-equal intervals).

// deltaSetsOut accumulates one enumeration's results: the delta-only
// match sets (deduplicated), whether some surviving set also contains a
// base row, and whether every surviving delta-involving set has
// all-equal member intervals.
type deltaSetsOut struct {
	sets        [][]factRef
	touchesBase bool
	aligned     bool
	err         error
}

// deltaMatchSets enumerates the match sets of Renamed(phis) over ic
// that involve at least one delta row and have a non-empty common
// intersection — the only sets Algorithm 1 would act on that the base
// run has not already accounted for. With workers > 1 the enumeration
// shards over the delta frontier (ic must then be frozen or otherwise
// safe for concurrent reads); the result is order-insensitive, so the
// shards merge with a content dedup.
func deltaMatchSets(ctx context.Context, ic *instance.Concrete, phis []logic.Conjunction, delta *logic.DeltaSet, workers int) deltaSetsOut {
	renamed := Renamed(phis)
	st := ic.Store()
	if workers < 1 {
		workers = 1
	}
	shards := make([]deltaSetsOut, workers)
	collect := func(w int) {
		out := &shards[w]
		out.aligned = true
		local := make(map[uint64][][]factRef)
		matches := 0
		for _, phi := range renamed {
			if out.err = ctxErr(ctx); out.err != nil {
				return
			}
			logic.ForEachIDsDeltaPart(st, phi, delta, w, workers, func(stage int, m *logic.IDMatch) bool {
				matches++
				if matches&63 == 0 {
					if out.err = ctxErr(ctx); out.err != nil {
						return false
					}
				}
				refs := make([]factRef, 0, len(m.Rows))
				for _, r := range m.Rows {
					refs = append(refs, factRef{r.Rel, r.Row})
				}
				sort.Slice(refs, func(i, j int) bool {
					if refs[i].rel != refs[j].rel {
						return refs[i].rel < refs[j].rel
					}
					return refs[i].row < refs[j].row
				})
				uniq := refs[:1]
				for _, r := range refs[1:] {
					if r != uniq[len(uniq)-1] {
						uniq = append(uniq, r)
					}
				}
				ivs := make([]interval.Interval, len(uniq))
				for i, r := range uniq {
					ivs[i] = ic.FactAt(r.rel, r.row).T
				}
				if _, ok := interval.CommonIntersection(ivs); !ok {
					return true // empty intersection: the base fragmentation ignores it too
				}
				if !interval.AllEqual(ivs) {
					out.aligned = false
				}
				mixed := false
				for _, r := range uniq {
					if !delta.Contains(r.rel, r.row) {
						mixed = true
						break
					}
				}
				if mixed {
					out.touchesBase = true
					return true
				}
				h := hashRefs(uniq)
				for _, prev := range local[h] {
					if slices.Equal(prev, uniq) {
						return true
					}
				}
				local[h] = append(local[h], uniq)
				out.sets = append(out.sets, uniq)
				return true
			})
		}
	}
	if workers == 1 {
		collect(0)
		return shards[0]
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			collect(w)
		}(w)
	}
	wg.Wait()
	merged := deltaSetsOut{aligned: true}
	seen := make(map[uint64][][]factRef)
	for w := range shards {
		if err := shards[w].err; err != nil {
			return deltaSetsOut{err: err}
		}
		merged.touchesBase = merged.touchesBase || shards[w].touchesBase
		merged.aligned = merged.aligned && shards[w].aligned
	next:
		for _, refs := range shards[w].sets {
			h := hashRefs(refs)
			for _, prev := range seen[h] {
				if slices.Equal(prev, refs) {
					continue next
				}
			}
			seen[h] = append(seen[h], refs)
			merged.sets = append(merged.sets, refs)
		}
	}
	return merged
}

// DeltaAligned reports whether every match set of Renamed(phis) over ic
// that involves at least one delta row either has an empty common
// intersection or consists of facts with identical intervals — i.e.
// renormalizing ic w.r.t. phis would leave the delta frontier (and, if
// the base part was already normalized, the whole instance) untouched.
// The incremental egd phase uses it as its fast-path guard: when it
// holds, the retained base fragmentation and family synchronization
// carry over verbatim. With workers > 1, ic must be frozen.
func DeltaAligned(ctx context.Context, ic *instance.Concrete, phis []logic.Conjunction, delta *logic.DeltaSet, workers int) (bool, error) {
	out := deltaMatchSets(ctx, ic, phis, delta, workers)
	if out.err != nil {
		return false, out.err
	}
	return out.aligned, nil
}

// DeltaSourceNormalize extends a retained source normalization with a
// freshly appended delta: combined must be normBase's input instance
// plus delta rows appended after every base row, and normBase the
// Algorithm 1 output (same strategy conjunctions phis) of the base part
// alone. On the fast path (ok=true) it returns a new mutable instance
// equal — byte for byte, including per-relation row order — to
// Algorithm 1 over the whole combined instance, together with the set
// of rows in it that derive from delta rows (the semi-naive frontier
// for the tgd phase). ok=false means some surviving match set mixes
// base and delta rows, so the combined normalization would refragment
// base facts and the caller must renormalize from scratch; norm and
// newRows are nil then. With workers > 1, combined must be frozen.
func DeltaSourceNormalize(ctx context.Context, combined, normBase *instance.Concrete, phis []logic.Conjunction, delta *logic.DeltaSet, workers int) (norm *instance.Concrete, newRows *logic.DeltaSet, ok bool, err error) {
	out := deltaMatchSets(ctx, combined, phis, delta, workers)
	if out.err != nil {
		return nil, nil, false, out.err
	}
	if out.touchesBase {
		return nil, nil, false, nil
	}

	// Merge the delta-only sets into components and collect cuts, exactly
	// as fragmentSets does for the full set list.
	ids := make(map[factRef]int)
	var refs []factRef
	idOf := func(r factRef) int {
		if id, present := ids[r]; present {
			return id
		}
		id := len(refs)
		ids[r] = id
		refs = append(refs, r)
		return id
	}
	for _, set := range out.sets {
		for _, r := range set {
			idOf(r)
		}
	}
	uf := newUnionFind(len(refs))
	for _, set := range out.sets {
		first := idOf(set[0])
		for _, r := range set[1:] {
			uf.union(first, idOf(r))
		}
	}
	endpoints := make(map[int][]interval.Interval)
	for r, id := range ids {
		root := uf.find(id)
		endpoints[root] = append(endpoints[root], combined.FactAt(r.rel, r.row).T)
	}
	cuts := make(map[int][]interval.Time, len(endpoints))
	for root, ivs := range endpoints {
		cuts[root] = interval.Endpoints(ivs)
	}

	// Append the delta fragments to a clone of the retained base
	// normalization, per relation in ascending row order — the order
	// fragmentSets would visit them in, since delta rows follow every
	// base row. Fragments that collide with an existing row dedup away
	// exactly as MustInsert would, and stay out of the frontier.
	res := normBase.Clone()
	frontier := logic.NewDeltaSet()
	for _, rel := range delta.Relations() {
		if err := ctxErr(ctx); err != nil {
			return nil, nil, false, err
		}
		r := combined.Store().Rel(rel)
		for _, row := range delta.Rows(rel) {
			if r == nil || row >= r.NumRows() || !r.Alive(row) {
				continue
			}
			f := combined.FactAt(rel, row)
			id, inSet := ids[factRef{rel, row}]
			frags := []fact.CFact{f}
			if inSet {
				frags = f.Fragment(cuts[uf.find(id)])
			}
			for _, fr := range frags {
				added, err := res.Insert(fr)
				if err != nil {
					return nil, nil, false, err
				}
				if added {
					frontier.Add(fr.Rel, res.Store().Rel(fr.Rel).NumRows()-1)
				}
			}
		}
	}
	return res, frontier, true, nil
}
