package normalize

import (
	"testing"

	"repro/internal/dependency"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/paperex"
	"repro/internal/value"
)

// familyAnnotationsAligned reports whether every pair of overlapping
// occurrences of the same null family carries identical annotations —
// the invariant SyncFamilies establishes.
func familyAnnotationsAligned(c *instance.Concrete) bool {
	occ := make(map[uint64][]interval.Interval)
	for _, f := range c.Facts() {
		for _, v := range f.Args {
			if v.Kind() == value.AnnNull {
				occ[v.ID] = append(occ[v.ID], f.T)
			}
		}
	}
	for _, ivs := range occ {
		for i := 0; i < len(ivs); i++ {
			for j := i + 1; j < len(ivs); j++ {
				if ivs[i].Overlaps(ivs[j]) && ivs[i] != ivs[j] {
					return false
				}
			}
		}
	}
	return true
}

func TestSyncFamiliesAlignsOccurrences(t *testing.T) {
	// The regression shape from the randomized-mapping bug: one family
	// annotated [1,3) in T0 and fragmented to [1,2)/[2,3) in T1.
	var g value.NullGen
	n := g.Fresh()
	c := instance.NewConcrete(nil)
	c.MustInsert(fact.NewC("T0", paperex.Iv(1, 3), paperex.C("a"), value.NewAnnNull(n, paperex.Iv(1, 3))))
	c.MustInsert(fact.NewC("T1", paperex.Iv(1, 2), paperex.C("a"), value.NewAnnNull(n, paperex.Iv(1, 2))))
	c.MustInsert(fact.NewC("T1", paperex.Iv(2, 3), paperex.C("a"), value.NewAnnNull(n, paperex.Iv(2, 3))))
	if familyAnnotationsAligned(c) {
		t.Fatal("test input should start misaligned")
	}
	out := SyncFamilies(c)
	if !familyAnnotationsAligned(out) {
		t.Fatalf("occurrences still misaligned:\n%s", out)
	}
	// T0's fact must have split at 2.
	if !out.Contains(fact.NewC("T0", paperex.Iv(1, 2), paperex.C("a"), value.NewAnnNull(n, paperex.Iv(1, 2)))) {
		t.Fatalf("T0 not fragmented:\n%s", out)
	}
	if !Check(c, out) {
		t.Fatal("SyncFamilies changed semantics")
	}
	// Already-aligned instances pass through unchanged (same pointer-free
	// equality).
	again := SyncFamilies(out)
	if !again.Equal(out) {
		t.Fatal("SyncFamilies not idempotent")
	}
}

func TestSyncFamiliesCascades(t *testing.T) {
	// Fragmenting for one family can desynchronize another sharing a
	// fact; the fixpoint loop must settle both.
	var g value.NullGen
	n1, n2 := g.Fresh(), g.Fresh()
	c := instance.NewConcrete(nil)
	// Fact A carries both families over [0,4); fact B pins n1 to [0,2);
	// fact C pins n2 to [1,4).
	c.MustInsert(fact.NewC("R", paperex.Iv(0, 4),
		value.NewAnnNull(n1, paperex.Iv(0, 4)), value.NewAnnNull(n2, paperex.Iv(0, 4))))
	c.MustInsert(fact.NewC("S", paperex.Iv(0, 2), value.NewAnnNull(n1, paperex.Iv(0, 2))))
	c.MustInsert(fact.NewC("P", paperex.Iv(1, 4), value.NewAnnNull(n2, paperex.Iv(1, 4))))
	out := SyncFamilies(c)
	if !familyAnnotationsAligned(out) {
		t.Fatalf("cascade not settled:\n%s", out)
	}
	if !Check(c, out) {
		t.Fatal("semantics changed")
	}
	// R must be cut at both 1 (from n2's pin) and 2 (from n1's pin).
	found := false
	for _, f := range out.FactsOf("R") {
		if f.T == paperex.Iv(1, 2) {
			found = true
		}
	}
	if !found {
		t.Fatalf("R not cut at both family boundaries:\n%s", out)
	}
}

func TestForEgdPhaseEstablishesBothInvariants(t *testing.T) {
	tv := logic.Var(dependency.TemporalVar)
	phi := logic.Conjunction{
		logic.Atom{Rel: "Emp", Terms: []logic.Term{logic.Var("n"), logic.Var("s"), tv}},
		logic.Atom{Rel: "Emp", Terms: []logic.Term{logic.Var("n"), logic.Var("s2"), tv}},
	}
	var g value.NullGen
	n := g.Fresh()
	c := instance.NewConcrete(nil)
	c.MustInsert(fact.NewC("Emp", paperex.Iv(0, 6), paperex.C("a"), value.NewAnnNull(n, paperex.Iv(0, 6))))
	c.MustInsert(fact.NewC("Emp", paperex.Iv(2, 4), paperex.C("a"), paperex.C("9k")))
	c.MustInsert(fact.NewC("Other", paperex.Iv(1, 3), paperex.C("a"), value.NewAnnNull(n, paperex.Iv(1, 3))))
	out := ForEgdPhase(c, []logic.Conjunction{phi}, StrategySmart)
	if !HasEmptyIntersectionProperty(out, []logic.Conjunction{phi}) {
		t.Fatalf("EIP missing:\n%s", out)
	}
	if !familyAnnotationsAligned(out) {
		t.Fatalf("families misaligned:\n%s", out)
	}
	if !Check(c, out) {
		t.Fatal("semantics changed")
	}
	// Naive strategy gives both invariants in one pass.
	nv := ForEgdPhase(c, []logic.Conjunction{phi}, StrategyNaive)
	if !HasEmptyIntersectionProperty(nv, []logic.Conjunction{phi}) || !familyAnnotationsAligned(nv) {
		t.Fatalf("naive path invariants missing:\n%s", nv)
	}
}
