// Package normalize implements instance normalization (paper §4.2): the
// preprocessing that fragments the facts of a concrete instance so that
// time intervals behave as constants with respect to a set of temporal
// conjunctions Φ+ — the left-hand sides of the dependencies (or the body
// of a query) about to be evaluated.
//
// Two algorithms are provided:
//
//   - Smart (the paper's Algorithm 1, norm(Ic, Φ+)): only facts that
//     jointly satisfy some conjunction of N(Φ+) with properly overlapping
//     intervals are fragmented, after merging overlapping fact sets.
//     Polynomial in |Ic| for fixed Φ+, minimal output.
//   - Naive: every fact is fragmented on the global endpoint partition of
//     the whole instance, ignoring Φ+. O(n log n) time, possibly larger
//     output (Figure 6 vs Figure 5), but normalized w.r.t. *every* Φ+ and
//     stable under later egd identifications.
//
// HasEmptyIntersectionProperty implements Definition 10 and, via
// Theorem 11, decides whether an instance is normalized.
package normalize

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"sync"

	"repro/internal/dependency"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/storage"
	"repro/internal/value"
)

// ctxErr reports the context's error without blocking: nil while the
// context is live, a wrapped ctx.Err() once it is done.
func ctxErr(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return fmt.Errorf("normalize: %w", ctx.Err())
	default:
		return nil
	}
}

// Renamed returns N(Φ+): each conjunction with its shared temporal
// variable replaced by one fresh variable per atom (Example 9).
func Renamed(phis []logic.Conjunction) []logic.Conjunction {
	out := make([]logic.Conjunction, len(phis))
	for i, phi := range phis {
		out[i] = phi.RenameTemporal(dependency.TemporalVar)
	}
	return out
}

// factRef identifies a fact inside a concrete instance.
type factRef struct {
	rel string
	row int
}

// hashRefs hashes a sorted ref set, the dedup bucket key of matchSets
// (no strings are built; collisions are resolved by slices.Equal).
func hashRefs(refs []factRef) uint64 {
	h := value.NewHash64()
	for _, r := range refs {
		h = h.String(r.rel).Word(uint64(r.row))
	}
	return h.Sum()
}

// matchSets enumerates, per Definition 10 / Algorithm 1 line 3, the sets
// Δ = {f1, ..., fm} ⊆ Ic that are the image of some homomorphism from a
// conjunction in N(Φ+) and whose intervals have a non-empty common
// intersection. Duplicate sets are returned once. Only the row witnesses
// of each homomorphism are consumed, so the enumeration runs on the
// interned fast path (ForEachIDs) and never materializes a binding. The
// enumeration — the potentially large part of normalization — checks ctx
// every few dozen matches and aborts with its error once canceled.
func matchSets(ctx context.Context, ic *instance.Concrete, phis []logic.Conjunction) ([][]factRef, error) {
	seen := make(map[uint64][][]factRef)
	var out [][]factRef
	var stepErr error
	matches := 0
	st := ic.Store()
	for _, phi := range Renamed(phis) {
		if stepErr = ctxErr(ctx); stepErr != nil {
			return nil, stepErr
		}
		logic.ForEachIDs(st, phi, nil, func(m *logic.IDMatch) bool {
			matches++
			if matches&63 == 0 {
				if stepErr = ctxErr(ctx); stepErr != nil {
					return false
				}
			}
			// Deduplicate rows within a match: set semantics for Δ.
			refs := make([]factRef, 0, len(m.Rows))
			for _, r := range m.Rows {
				refs = append(refs, factRef{r.Rel, r.Row})
			}
			if len(refs) == 0 {
				return true // empty conjunction: nothing to fragment
			}
			sort.Slice(refs, func(i, j int) bool {
				if refs[i].rel != refs[j].rel {
					return refs[i].rel < refs[j].rel
				}
				return refs[i].row < refs[j].row
			})
			uniq := refs[:1]
			for _, r := range refs[1:] {
				if r != uniq[len(uniq)-1] {
					uniq = append(uniq, r)
				}
			}
			ivs := make([]interval.Interval, len(uniq))
			for i, r := range uniq {
				ivs[i] = ic.FactAt(r.rel, r.row).T
			}
			if _, ok := interval.CommonIntersection(ivs); !ok {
				return true // empty intersection: nothing to fragment
			}
			h := hashRefs(uniq)
			for _, prev := range seen[h] {
				if slices.Equal(prev, uniq) {
					return true
				}
			}
			seen[h] = append(seen[h], uniq)
			out = append(out, uniq)
			return true
		})
		if stepErr != nil {
			return nil, stepErr
		}
	}
	return out, nil
}

// parallelCutoffFacts is the instance size below which the egd-phase
// normalization ignores its workers argument and enumerates match sets
// sequentially: freezing the instance and spinning up workers costs more
// than enumerating a few hundred facts outright. It mirrors the chase's
// cutoff of the same name so the two phases flip together.
const parallelCutoffFacts = 128

// matchShard is one worker's share of the sharded match-set enumeration:
// per renamed conjunction, the candidate Δ sets of shard w in enumeration
// order. Sets are deduplicated only within the worker's own stream (that
// drops later duplicates exclusively, so the merged stream still carries
// each distinct set at its earliest position); the merge applies the
// global cross-worker dedup.
type matchShard struct {
	sets [][][]factRef
	err  error
}

// matchSetsParallel is matchSets with the enumeration split into workers
// contiguous shards per renamed conjunction (logic.ForEachIDsPartMulti
// over the frozen instance). Concatenating each conjunction's shards in
// worker-rank order reproduces the sequential enumeration order, so after
// the merge applies the global hash-dedup the returned set list is
// identical to the sequential one. ic must be owned by the caller or
// already frozen: it is frozen here to make concurrent enumeration
// mutation-free.
func matchSetsParallel(ctx context.Context, ic *instance.Concrete, phis []logic.Conjunction, workers int) ([][]factRef, error) {
	ic.Freeze()
	renamed := Renamed(phis)
	st := ic.Store()
	shards := make([]matchShard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shards[w] = enumerateMatchShard(ctx, ic, st, renamed, w, workers)
		}(w)
	}
	wg.Wait()
	for w := range shards {
		if err := shards[w].err; err != nil {
			return nil, err
		}
	}

	// Merge in (conjunction, worker-rank) order with the global dedup —
	// exactly the order and the set semantics of the sequential pass.
	seen := make(map[uint64][][]factRef)
	var out [][]factRef
	for pi := range renamed {
		for w := range shards {
		next:
			for _, refs := range shards[w].sets[pi] {
				h := hashRefs(refs)
				for _, prev := range seen[h] {
					if slices.Equal(prev, refs) {
						continue next
					}
				}
				seen[h] = append(seen[h], refs)
				out = append(out, refs)
			}
		}
	}
	return out, nil
}

// enumerateMatchShard runs one worker of matchSetsParallel: shard w of
// every renamed conjunction, with the same per-match processing as the
// sequential matchSets (row dedup, common-intersection filter) plus a
// worker-local dedup bounding the buffered sets.
func enumerateMatchShard(ctx context.Context, ic *instance.Concrete, st *storage.Store, renamed []logic.Conjunction, w, workers int) (out matchShard) {
	out.sets = make([][][]factRef, len(renamed))
	local := make(map[uint64][][]factRef)
	matches := 0
	logic.ForEachIDsPartMulti(st, renamed, w, workers, func(ci int, m *logic.IDMatch) bool {
		matches++
		if matches&63 == 0 {
			if out.err = ctxErr(ctx); out.err != nil {
				return false
			}
		}
		refs := make([]factRef, 0, len(m.Rows))
		for _, r := range m.Rows {
			refs = append(refs, factRef{r.Rel, r.Row})
		}
		if len(refs) == 0 {
			return true // empty conjunction: nothing to fragment
		}
		sort.Slice(refs, func(i, j int) bool {
			if refs[i].rel != refs[j].rel {
				return refs[i].rel < refs[j].rel
			}
			return refs[i].row < refs[j].row
		})
		uniq := refs[:1]
		for _, r := range refs[1:] {
			if r != uniq[len(uniq)-1] {
				uniq = append(uniq, r)
			}
		}
		ivs := make([]interval.Interval, len(uniq))
		for i, r := range uniq {
			ivs[i] = ic.FactAt(r.rel, r.row).T
		}
		if _, ok := interval.CommonIntersection(ivs); !ok {
			return true // empty intersection: nothing to fragment
		}
		h := hashRefs(uniq)
		for _, prev := range local[h] {
			if slices.Equal(prev, uniq) {
				return true
			}
		}
		local[h] = append(local[h], uniq)
		out.sets[ci] = append(out.sets[ci], uniq)
		return true
	})
	return out
}

// unionFind is a plain union-find over dense indices.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) { u.parent[u.find(a)] = u.find(b) }

// Smart is the paper's Algorithm 1, norm(Ic, Φ+). It returns a new
// instance in which exactly the facts participating in overlapping match
// sets are fragmented, on the endpoint partition of their merged set Δ.
func Smart(ic *instance.Concrete, phis []logic.Conjunction) *instance.Concrete {
	out, _ := SmartCtx(context.Background(), ic, phis) // Background never cancels
	return out
}

// SmartCtx is Smart under a context: the match-set enumeration — the
// expensive step — aborts promptly with the context's error once ctx is
// done. This is the entry the chase's cancellable loops use.
func SmartCtx(ctx context.Context, ic *instance.Concrete, phis []logic.Conjunction) (*instance.Concrete, error) {
	sets, err := matchSets(ctx, ic, phis)
	if err != nil {
		return nil, err
	}
	return fragmentSets(ctx, ic, sets)
}

// fragmentSets is the second half of Algorithm 1: given the Δ sets the
// enumeration produced, merge overlapping sets and fragment the member
// facts on their merged component's endpoint partition. Shared by the
// sequential and the sharded-parallel enumeration paths, which produce
// identical set lists.
func fragmentSets(ctx context.Context, ic *instance.Concrete, sets [][]factRef) (*instance.Concrete, error) {
	if len(sets) == 0 {
		return ic.Clone(), nil
	}

	// Merge sets sharing a fact (lines 4–10) with a union-find over the
	// facts occurring in any set: all facts of one Δ join one component,
	// and overlapping Δs collapse transitively.
	ids := make(map[factRef]int)
	var refs []factRef
	idOf := func(r factRef) int {
		if id, ok := ids[r]; ok {
			return id
		}
		id := len(refs)
		ids[r] = id
		refs = append(refs, r)
		return id
	}
	for _, set := range sets {
		for _, r := range set {
			idOf(r)
		}
	}
	uf := newUnionFind(len(refs))
	for _, set := range sets {
		first := idOf(set[0])
		for _, r := range set[1:] {
			uf.union(first, idOf(r))
		}
	}

	// Collect endpoint sequences TP_Δ per merged component (line 12).
	endpoints := make(map[int][]interval.Interval)
	for r, id := range ids {
		root := uf.find(id)
		endpoints[root] = append(endpoints[root], ic.FactAt(r.rel, r.row).T)
	}
	cuts := make(map[int][]interval.Time, len(endpoints))
	for root, ivs := range endpoints {
		cuts[root] = interval.Endpoints(ivs)
	}

	// Fragment each member fact on its component's cuts (lines 14–17);
	// facts in no component pass through unchanged. Iteration goes
	// through the store's live-row API: row numbers are physical (they
	// key the match witnesses in ids), and dead rows are skipped.
	out := instance.NewConcreteWith(ic.Schema(), ic.Interner())
	for _, rel := range ic.Relations() {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		ic.Store().Rel(rel).EachLive(func(row int) bool {
			f := ic.FactAt(rel, row)
			id, inSet := ids[factRef{rel, row}]
			if !inSet {
				out.MustInsert(f)
				return true
			}
			for _, fr := range f.Fragment(cuts[uf.find(id)]) {
				out.MustInsert(fr)
			}
			return true
		})
	}
	return out, nil
}

// Naive fragments every fact of the instance on the global endpoint
// partition, ignoring Φ+ entirely (the paper's naïve normalization
// algorithm, §4.2). The output is normalized with respect to every set of
// temporal conjunctions: any two fact intervals are equal or disjoint.
func Naive(ic *instance.Concrete) *instance.Concrete {
	cuts := ic.Endpoints()
	out := instance.NewConcreteWith(ic.Schema(), ic.Interner())
	ic.EachFact(func(f fact.CFact) bool {
		for _, fr := range f.Fragment(cuts) {
			out.MustInsert(fr)
		}
		return true
	})
	return out
}

// ForMapping normalizes an instance for the given strategy. Smart
// requires the conjunction set; Naive ignores it.
func ForMapping(ic *instance.Concrete, phis []logic.Conjunction, strategy Strategy) *instance.Concrete {
	out, _ := ForMappingCtx(context.Background(), ic, phis, strategy)
	return out
}

// ForMappingCtx is ForMapping under a context; once ctx is done the pass
// aborts promptly with its error.
func ForMappingCtx(ctx context.Context, ic *instance.Concrete, phis []logic.Conjunction, strategy Strategy) (*instance.Concrete, error) {
	switch strategy {
	case StrategyNaive:
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		return Naive(ic), nil
	default:
		return SmartCtx(ctx, ic, phis)
	}
}

// Strategy selects the normalization algorithm.
type Strategy int

const (
	// StrategySmart is the paper's Algorithm 1 (default).
	StrategySmart Strategy = iota
	// StrategyNaive is global endpoint fragmentation.
	StrategyNaive
)

func (s Strategy) String() string {
	if s == StrategyNaive {
		return "naive"
	}
	return "smart"
}

// HasEmptyIntersectionProperty implements Definition 10: for every
// homomorphism from a conjunction of N(Φ+) into the instance, the common
// intersection of the image facts' intervals is either empty or equal to
// their union (i.e. all intervals coincide). By Theorem 11 this holds iff
// the instance is normalized w.r.t. Φ+.
func HasEmptyIntersectionProperty(ic *instance.Concrete, phis []logic.Conjunction) bool {
	ok := true
	st := ic.Store()
	for _, phi := range Renamed(phis) {
		logic.ForEachIDs(st, phi, nil, func(m *logic.IDMatch) bool {
			ivs := make([]interval.Interval, len(m.Rows))
			for i, r := range m.Rows {
				ivs[i] = ic.FactAt(r.Rel, r.Row).T
			}
			if _, nonEmpty := interval.CommonIntersection(ivs); nonEmpty && !interval.AllEqual(ivs) {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return false
		}
	}
	return true
}

// FragmentBound returns the Theorem 13 worst-case size bound for
// normalizing an n-fact instance: every fact fragmented at every distinct
// endpoint, O(n²) — concretely at most n · (2n − 1) fragments.
func FragmentBound(n int) int {
	if n <= 0 {
		return 0
	}
	return n * (2*n - 1)
}

// Stats summarizes a normalization run for the experiment harness.
type Stats struct {
	InputFacts  int
	OutputFacts int
	Components  int // merged Δ sets that drove fragmentation (Smart only)
}

// SmartWithStats is Smart, additionally reporting size statistics.
func SmartWithStats(ic *instance.Concrete, phis []logic.Conjunction) (*instance.Concrete, Stats) {
	out := Smart(ic, phis)
	st := Stats{InputFacts: ic.Len(), OutputFacts: out.Len()}
	sets, _ := matchSets(context.Background(), ic, phis)
	roots := make(map[int]bool)
	// Recompute component count the same way Smart does.
	ids := make(map[factRef]int)
	var refs []factRef
	for _, set := range sets {
		for _, r := range set {
			if _, ok := ids[r]; !ok {
				ids[r] = len(refs)
				refs = append(refs, r)
			}
		}
	}
	uf := newUnionFind(len(refs))
	for _, set := range sets {
		for _, r := range set[1:] {
			uf.union(ids[set[0]], ids[r])
		}
	}
	for _, id := range ids {
		roots[uf.find(id)] = true
	}
	st.Components = len(roots)
	return out, st
}

// Check verifies that normalized preserves the semantics of original:
// every snapshot of ⟦normalized⟧ equals the corresponding snapshot of
// ⟦original⟧. Sampling is segment-representative, so the check is exact.
func Check(original, normalized *instance.Concrete) bool {
	a, b := original.Abstract(), normalized.Abstract()
	for _, tp := range instance.SamplePoints(a, b) {
		if !a.Snapshot(tp).Equal(b.Snapshot(tp)) {
			return false
		}
	}
	return true
}

// SyncFamilies fragments facts so that every occurrence of each
// interval-annotated null family carries an identical annotation where
// occurrences overlap in time. The chase's egd step replaces an annotated
// null "everywhere"; that is only sound when the value being replaced is
// the same value in every fact it semantically occurs in. Algorithm 1
// fragments only the facts participating in matches, which can leave the
// same family annotated [1,3) in one fact and [2,3) in another — this
// pass propagates the cuts through families until all occurrences align.
// (The naïve normalizer's global partition has this property already.)
func SyncFamilies(c *instance.Concrete) *instance.Concrete {
	out, _ := syncFamiliesCtx(context.Background(), c)
	return out
}

// syncFamiliesCtx is SyncFamilies with a per-pass context check.
func syncFamiliesCtx(ctx context.Context, c *instance.Concrete) (*instance.Concrete, error) {
	cur := c
	for pass := 0; ; pass++ {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		// Collect, per family, the endpoints of all occurrence annotations
		// (equal to the enclosing fact intervals by the fact invariant).
		// Iteration is store order (EachFact): deterministic without the
		// sorted materialization Facts would pay twice per pass.
		cuts := make(map[uint64][]interval.Time)
		cur.EachFact(func(f fact.CFact) bool {
			for _, v := range f.Args {
				if v.Kind() == value.AnnNull {
					cuts[v.ID] = append(cuts[v.ID], f.T.Start, f.T.End)
				}
			}
			return true
		})
		out := instance.NewConcreteWith(cur.Schema(), cur.Interner())
		changed := false
		cur.EachFact(func(f fact.CFact) bool {
			var factCuts []interval.Time
			for _, v := range f.Args {
				if v.Kind() == value.AnnNull {
					factCuts = append(factCuts, cuts[v.ID]...)
				}
			}
			frags := f.Fragment(factCuts)
			if len(frags) > 1 {
				changed = true
			}
			for _, fr := range frags {
				out.MustInsert(fr)
			}
			return true
		})
		if !changed {
			return cur, nil
		}
		cur = out
	}
}

// ForEgdPhase prepares a target instance for egd matching: normalized
// w.r.t. the egd bodies AND family-synchronized, iterated to a joint
// fixpoint (each pass can enable the other: syncing splits facts, which
// can break the empty intersection property; normalizing splits facts,
// which can desynchronize families). Terminates because cuts only refine
// within the finite global endpoint set.
func ForEgdPhase(c *instance.Concrete, phis []logic.Conjunction, strategy Strategy) *instance.Concrete {
	out, _ := ForEgdPhaseCtx(context.Background(), c, phis, strategy)
	return out
}

// ForEgdPhaseCtx is ForEgdPhase under a context; the joint fixpoint loop
// and the match-set enumerations inside it abort promptly with the
// context's error once ctx is done.
func ForEgdPhaseCtx(ctx context.Context, c *instance.Concrete, phis []logic.Conjunction, strategy Strategy) (*instance.Concrete, error) {
	return ForEgdPhaseWorkers(ctx, c, phis, strategy, 1)
}

// ForEgdPhaseWorkers is ForEgdPhaseCtx with the match-set enumeration —
// the expensive step of each fixpoint iteration — split into workers
// contiguous shards running concurrently. The output is byte-identical
// to the sequential pass at any worker count: shards concatenate in
// worker-rank order to the sequential enumeration order, and the
// hash-dedup is replayed over the concatenation (see matchSetsParallel).
// The family-sync passes and the fragmentation itself stay sequential
// (linear scans; the enumeration dominates).
//
// With workers ≥ 2 the instance enumerated in each iteration is frozen
// in place first, so c must be owned by the caller or already frozen —
// and the returned instance may come back frozen (Clone it for a mutable
// descendant). Iterations over instances below an internal cutoff fall
// back to the sequential enumeration, where fan-out overhead dominates.
func ForEgdPhaseWorkers(ctx context.Context, c *instance.Concrete, phis []logic.Conjunction, strategy Strategy, workers int) (*instance.Concrete, error) {
	if strategy == StrategyNaive {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		return Naive(c), nil // globally fragmented: EIP for every Φ and family-consistent
	}
	cur := c
	for {
		var sets [][]factRef
		var err error
		if workers > 1 && cur.Len() >= parallelCutoffFacts {
			sets, err = matchSetsParallel(ctx, cur, phis, workers)
		} else {
			sets, err = matchSets(ctx, cur, phis)
		}
		if err != nil {
			return nil, err
		}
		smart, err := fragmentSets(ctx, cur, sets)
		if err != nil {
			return nil, err
		}
		next, err := syncFamiliesCtx(ctx, smart)
		if err != nil {
			return nil, err
		}
		if next.Equal(cur) {
			return cur, nil
		}
		cur = next
	}
}
