package normalize

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/paperex"
	"repro/internal/value"
	"repro/internal/workload"
)

// storeOrderFacts renders the instance's physical layout: relations
// lexicographic, live rows ascending. Two instances with equal layouts
// are byte-identical targets for the chase's row-addressed rewrites, a
// stronger property than set equality or sorted String output.
func storeOrderFacts(c *instance.Concrete) []string {
	var out []string
	c.EachFact(func(f fact.CFact) bool {
		out = append(out, f.String())
		return true
	})
	return out
}

// egdPhaseInput builds a tgd-phase-like target above the parallel
// cutoff: per group, k worker facts sharing one annotated null (the
// shape the egd phase renormalizes each round), plus salary facts whose
// intervals force fragmentation.
func egdPhaseInput(groups, k int) *instance.Concrete {
	var g value.NullGen
	ic := instance.NewConcrete(nil)
	for gi := 0; gi < groups; gi++ {
		name := paperex.C(fmt.Sprintf("p%d", gi))
		span := paperex.Iv(interval.Time(gi%5), interval.Time(20+gi%7))
		n := value.NewAnnNull(g.Fresh(), span)
		for i := 0; i < k; i++ {
			ic.MustInsert(fact.NewC(fmt.Sprintf("W%d", i), span, name, n))
		}
		ic.MustInsert(fact.NewC("S", paperex.Iv(interval.Time(2+gi%3), interval.Time(15+gi%9)), name, paperex.C(fmt.Sprintf("s%d", gi%4))))
	}
	return ic
}

// egdPhaseBodies is the Φ set for egdPhaseInput: one join per worker
// relation against the salary relation, sharing the temporal variable.
func egdPhaseBodies(k int) []logic.Conjunction {
	tv := logic.Var("__t")
	out := make([]logic.Conjunction, k)
	for i := 0; i < k; i++ {
		out[i] = logic.Conjunction{
			{Rel: fmt.Sprintf("W%d", i), Terms: []logic.Term{logic.Var("n"), logic.Var("x"), tv}},
			{Rel: "S", Terms: []logic.Term{logic.Var("n"), logic.Var("s"), tv}},
		}
	}
	return out
}

// TestForEgdPhaseWorkersLockstep pins the normalization layer's own
// byte-identity contract, below the chase: ForEgdPhaseWorkers over a
// frozen input produces the same physical store layout (not just the
// same fact set) at any worker count, for both strategies.
func TestForEgdPhaseWorkersLockstep(t *testing.T) {
	ic := egdPhaseInput(40, 4)
	if ic.Len() < parallelCutoffFacts {
		t.Fatalf("input too small to engage the parallel path: %d facts", ic.Len())
	}
	phis := egdPhaseBodies(4)
	for _, strategy := range []Strategy{StrategySmart, StrategyNaive} {
		t.Run(fmt.Sprint(strategy), func(t *testing.T) {
			seq, err := ForEgdPhaseWorkers(context.Background(), ic.Clone(), phis, strategy, 1)
			if err != nil {
				t.Fatal(err)
			}
			want := storeOrderFacts(seq)
			for _, workers := range []int{2, 4, 8} {
				in := ic.Clone()
				in.Freeze() // parallel path requires owned-or-frozen input
				par, err := ForEgdPhaseWorkers(context.Background(), in, phis, strategy, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				got := storeOrderFacts(par)
				if len(got) != len(want) {
					t.Fatalf("workers=%d: %d facts, want %d", workers, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("workers=%d: store row %d differs:\n%s\nvs\n%s", workers, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestForEgdPhaseWorkersCutoff pins the sub-cutoff fallback: a tiny
// input never freezes, even at workers > 1, so mutable callers below
// the cutoff are untouched by the parallel machinery.
func TestForEgdPhaseWorkersCutoff(t *testing.T) {
	ic := egdPhaseInput(3, 2)
	if ic.Len() >= parallelCutoffFacts {
		t.Fatalf("test input too large: %d facts", ic.Len())
	}
	out, err := ForEgdPhaseWorkers(context.Background(), ic, egdPhaseBodies(2), StrategySmart, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ic.Frozen() || out.Frozen() {
		t.Fatal("sub-cutoff input was frozen by the parallel path")
	}
}

// TestForEgdPhaseWorkersTaxi cross-checks against a real workload: the
// taxi scenario's egd bodies over its chased (tgd-only) target.
func TestForEgdPhaseWorkersTaxi(t *testing.T) {
	m := workload.TaxiMapping()
	src := workload.Taxi(workload.TaxiConfig{Seed: 3, Drivers: 40, Cabs: 15, Span: 50})
	// Normalize the source against the tgd bodies — a standalone stand-in
	// for a tgd-phase target that still exercises real joins.
	base := ForMapping(src, m.TGDBodies(), StrategySmart)
	if base.Len() < parallelCutoffFacts {
		t.Fatalf("taxi base too small: %d facts", base.Len())
	}
	phis := m.EGDBodies()
	seq, err := ForEgdPhaseWorkers(context.Background(), base.Clone(), phis, StrategySmart, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := storeOrderFacts(seq)
	for _, workers := range []int{2, 4} {
		in := base.Clone()
		in.Freeze()
		par, err := ForEgdPhaseWorkers(context.Background(), in, phis, StrategySmart, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := storeOrderFacts(par)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d facts, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: store row %d differs:\n%s\nvs\n%s", workers, i, got[i], want[i])
			}
		}
	}
}
