package normalize

import (
	"math/rand"
	"testing"

	"repro/internal/dependency"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/paperex"
	"repro/internal/value"
)

// wantFacts asserts that got contains exactly the listed facts.
func wantFacts(t *testing.T, got *instance.Concrete, want []fact.CFact) {
	t.Helper()
	if got.Len() != len(want) {
		t.Fatalf("got %d facts, want %d:\n%s", got.Len(), len(want), got)
	}
	for _, f := range want {
		if !got.Contains(f) {
			t.Fatalf("missing fact %v in:\n%s", f, got)
		}
	}
}

func TestFigure5SmartNormalization(t *testing.T) {
	// norm(Figure 4, lhs(σ2+)) must equal Figure 5: nine facts.
	ic := paperex.Figure4()
	got := Smart(ic, []logic.Conjunction{paperex.Sigma2Body()})
	iv, c, inf := paperex.Iv, paperex.C, paperex.Inf
	wantFacts(t, got, []fact.CFact{
		fact.NewC("E", iv(2012, 2013), c("Ada"), c("IBM")),
		fact.NewC("E", iv(2013, 2014), c("Ada"), c("IBM")),
		fact.NewC("E", iv(2014, inf), c("Ada"), c("Google")),
		fact.NewC("E", iv(2013, 2015), c("Bob"), c("IBM")),
		fact.NewC("E", iv(2015, 2018), c("Bob"), c("IBM")),
		fact.NewC("S", iv(2013, 2014), c("Ada"), c("18k")),
		fact.NewC("S", iv(2014, inf), c("Ada"), c("18k")),
		fact.NewC("S", iv(2015, 2018), c("Bob"), c("13k")),
		fact.NewC("S", iv(2018, inf), c("Bob"), c("13k")),
	})
}

func TestFigure6NaiveNormalization(t *testing.T) {
	// Naïve normalization of Figure 4 must equal Figure 6: fourteen facts,
	// over-fragmenting relative to Figure 5.
	ic := paperex.Figure4()
	got := Naive(ic)
	iv, c, inf := paperex.Iv, paperex.C, paperex.Inf
	wantFacts(t, got, []fact.CFact{
		fact.NewC("E", iv(2012, 2013), c("Ada"), c("IBM")),
		fact.NewC("E", iv(2013, 2014), c("Ada"), c("IBM")),
		fact.NewC("E", iv(2014, 2015), c("Ada"), c("Google")),
		fact.NewC("E", iv(2015, 2018), c("Ada"), c("Google")),
		fact.NewC("E", iv(2018, inf), c("Ada"), c("Google")),
		fact.NewC("E", iv(2013, 2014), c("Bob"), c("IBM")),
		fact.NewC("E", iv(2014, 2015), c("Bob"), c("IBM")),
		fact.NewC("E", iv(2015, 2018), c("Bob"), c("IBM")),
		fact.NewC("S", iv(2013, 2014), c("Ada"), c("18k")),
		fact.NewC("S", iv(2014, 2015), c("Ada"), c("18k")),
		fact.NewC("S", iv(2015, 2018), c("Ada"), c("18k")),
		fact.NewC("S", iv(2018, inf), c("Ada"), c("18k")),
		fact.NewC("S", iv(2015, 2018), c("Bob"), c("13k")),
		fact.NewC("S", iv(2018, inf), c("Bob"), c("13k")),
	})
}

func TestFigure8AlgorithmOnExample14(t *testing.T) {
	// norm(Figure 7, Φ+ of Example 14) must equal Figure 8: thirteen facts.
	ic := paperex.Figure7()
	got, stats := SmartWithStats(ic, paperex.Example14Conjunctions())
	iv, c, inf := paperex.Iv, paperex.C, paperex.Inf
	wantFacts(t, got, []fact.CFact{
		// f1 = R(a, [5,11)) fragments on TP_Δ1 = <5,7,8,10,11,15>.
		fact.NewC("R", iv(5, 7), c("a")),
		fact.NewC("R", iv(7, 8), c("a")),
		fact.NewC("R", iv(8, 10), c("a")),
		fact.NewC("R", iv(10, 11), c("a")),
		// f2 = P(a, [8,15)).
		fact.NewC("P", iv(8, 10), c("a")),
		fact.NewC("P", iv(10, 11), c("a")),
		fact.NewC("P", iv(11, 15), c("a")),
		// f3 = S(a, [7,10)).
		fact.NewC("S", iv(7, 8), c("a")),
		fact.NewC("S", iv(8, 10), c("a")),
		// f4 = P(b, [20,25)) has no interior cut in TP_Δ2 = <18,20,25,inf>.
		fact.NewC("P", iv(20, 25), c("b")),
		// f5 = S(b, [18,inf)).
		fact.NewC("S", iv(18, 20), c("b")),
		fact.NewC("S", iv(20, 25), c("b")),
		fact.NewC("S", iv(25, inf), c("b")),
	})
	// Two merged components: {f1,f2,f3} and {f4,f5} (Example 14).
	if stats.Components != 2 {
		t.Fatalf("components = %d, want 2", stats.Components)
	}
	if stats.InputFacts != 5 || stats.OutputFacts != 13 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestSharedTemporalVariableAfterNormalization(t *testing.T) {
	// §4.2 motivation: before normalization no homomorphism exists from
	// the lhs of σ2+ (shared t); after normalization the expected
	// homomorphisms appear, e.g. n→Ada, c→IBM, s→18k, t→[2013,2014).
	ic := paperex.Figure4()
	body := paperex.Sigma2Body()
	if logic.Exists(ic.Store(), body, nil) {
		t.Fatal("unnormalized instance should admit no homomorphism")
	}
	norm := Smart(ic, []logic.Conjunction{body})
	ms := logic.FindAll(norm.Store(), body, nil)
	if len(ms) == 0 {
		t.Fatal("normalized instance should admit homomorphisms")
	}
	found := false
	for _, m := range ms {
		if m.Binding["n"] == paperex.C("Ada") &&
			m.Binding["c"] == paperex.C("IBM") &&
			m.Binding[dependency.TemporalVar] == value.NewInterval(paperex.Iv(2013, 2014)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected Example 8 homomorphism among %d matches", len(ms))
	}
}

func TestTheorem11EIPDetection(t *testing.T) {
	ic := paperex.Figure4()
	phis := []logic.Conjunction{paperex.Sigma2Body()}
	if HasEmptyIntersectionProperty(ic, phis) {
		t.Fatal("Figure 4 is not normalized w.r.t. lhs(σ2+)")
	}
	if !HasEmptyIntersectionProperty(Smart(ic, phis), phis) {
		t.Fatal("Smart output must have the EIP (Theorem 15)")
	}
	if !HasEmptyIntersectionProperty(Naive(ic), phis) {
		t.Fatal("Naive output must have the EIP")
	}
	// An instance with no joinable facts is trivially normalized.
	solo := instance.NewConcrete(nil)
	solo.MustInsert(fact.NewC("E", paperex.Iv(1, 5), paperex.C("x"), paperex.C("y")))
	if !HasEmptyIntersectionProperty(solo, phis) {
		t.Fatal("single-fact instance is vacuously normalized")
	}
}

func TestSmartNoMatchesIsIdentity(t *testing.T) {
	// When Φ+ never matches (different join keys), Smart leaves the
	// instance untouched even though intervals overlap.
	ic := instance.NewConcrete(nil)
	ic.MustInsert(fact.NewC("E", paperex.Iv(1, 10), paperex.C("Ada"), paperex.C("IBM")))
	ic.MustInsert(fact.NewC("S", paperex.Iv(5, 15), paperex.C("Bob"), paperex.C("9k")))
	out := Smart(ic, []logic.Conjunction{paperex.Sigma2Body()})
	if !out.Equal(ic) {
		t.Fatalf("Smart fragmented unrelated facts:\n%s", out)
	}
	// Naive fragments them regardless — the over-fragmentation trade-off.
	if Naive(ic).Len() <= ic.Len() {
		t.Fatal("Naive should over-fragment here")
	}
}

func TestNormalizationPreservesAnnotatedNulls(t *testing.T) {
	// Fragmenting a fact with an annotated null keeps the family and
	// renames annotations to the fragment intervals.
	var g value.NullGen
	n := g.FreshAnn(paperex.Iv(1, 10))
	ic := instance.NewConcrete(nil)
	ic.MustInsert(fact.NewC("Emp", paperex.Iv(1, 10), paperex.C("Ada"), n))
	ic.MustInsert(fact.NewC("Emp", paperex.Iv(5, 12), paperex.C("Ada"), paperex.C("x")))
	tv := logic.Var(dependency.TemporalVar)
	phi := logic.Conjunction{
		logic.Atom{Rel: "Emp", Terms: []logic.Term{logic.Var("n"), logic.Var("s"), tv}},
		logic.Atom{Rel: "Emp", Terms: []logic.Term{logic.Var("n"), logic.Var("s2"), tv}},
	}
	out := Smart(ic, []logic.Conjunction{phi})
	if out.Len() != 4 {
		t.Fatalf("want 4 fragments, got:\n%s", out)
	}
	for _, f := range out.Facts() {
		if err := f.Validate(); err != nil {
			t.Fatalf("fragment invariant broken: %v", err)
		}
	}
	if !Check(ic, out) {
		t.Fatal("normalization changed semantics")
	}
}

func TestFragmentBound(t *testing.T) {
	if FragmentBound(0) != 0 || FragmentBound(1) != 1 {
		t.Fatal("small bounds wrong")
	}
	if FragmentBound(10) != 190 {
		t.Fatalf("FragmentBound(10) = %d", FragmentBound(10))
	}
}

func TestForMappingStrategies(t *testing.T) {
	ic := paperex.Figure4()
	phis := []logic.Conjunction{paperex.Sigma2Body()}
	smart := ForMapping(ic, phis, StrategySmart)
	naive := ForMapping(ic, phis, StrategyNaive)
	if smart.Len() != 9 || naive.Len() != 14 {
		t.Fatalf("smart=%d naive=%d", smart.Len(), naive.Len())
	}
	if StrategySmart.String() != "smart" || StrategyNaive.String() != "naive" {
		t.Fatal("Strategy String broken")
	}
}

// randomInstance builds a random concrete instance for property tests.
func randomInstance(r *rand.Rand, nFacts int) *instance.Concrete {
	ic := instance.NewConcrete(nil)
	rels := []string{"E", "S"}
	for i := 0; i < nFacts; i++ {
		s := interval.Time(r.Intn(12))
		var t0 interval.Interval
		if r.Intn(6) == 0 {
			t0 = interval.Interval{Start: s, End: interval.Infinity}
		} else {
			t0 = paperex.Iv(s, s+1+interval.Time(r.Intn(8)))
		}
		name := string(rune('a' + r.Intn(3)))
		val := string(rune('u' + r.Intn(3)))
		ic.MustInsert(fact.NewC(rels[r.Intn(2)], t0, paperex.C(name), paperex.C(val)))
	}
	return ic
}

func randomPhis() []logic.Conjunction {
	tv := logic.Var(dependency.TemporalVar)
	return []logic.Conjunction{
		{
			logic.Atom{Rel: "E", Terms: []logic.Term{logic.Var("n"), logic.Var("c"), tv}},
			logic.Atom{Rel: "S", Terms: []logic.Term{logic.Var("n"), logic.Var("s"), tv}},
		},
		{
			logic.Atom{Rel: "S", Terms: []logic.Term{logic.Var("n"), logic.Var("s"), tv}},
			logic.Atom{Rel: "S", Terms: []logic.Term{logic.Var("n"), logic.Var("s2"), tv}},
		},
	}
}

func TestTheorem15OutputNormalized(t *testing.T) {
	// Property: Smart's output always has the empty intersection property,
	// preserves semantics, and respects the Theorem 13 size bound.
	r := rand.New(rand.NewSource(31))
	phis := randomPhis()
	for trial := 0; trial < 150; trial++ {
		ic := randomInstance(r, 1+r.Intn(10))
		out := Smart(ic, phis)
		if !HasEmptyIntersectionProperty(out, phis) {
			t.Fatalf("EIP violated (Theorem 15) on:\n%s\noutput:\n%s", ic, out)
		}
		if !Check(ic, out) {
			t.Fatalf("semantics changed on:\n%s\noutput:\n%s", ic, out)
		}
		if out.Len() > FragmentBound(ic.Len()) {
			t.Fatalf("Theorem 13 bound exceeded: %d > %d", out.Len(), FragmentBound(ic.Len()))
		}
	}
}

func TestTheorem11Equivalence(t *testing.T) {
	// Property (both directions of Theorem 11, using Naive as a second
	// normalizer): any output of either normalizer has the EIP, and
	// whenever an instance lacks the EIP, Smart changes it.
	r := rand.New(rand.NewSource(37))
	phis := randomPhis()
	for trial := 0; trial < 150; trial++ {
		ic := randomInstance(r, 1+r.Intn(10))
		nv := Naive(ic)
		if !HasEmptyIntersectionProperty(nv, phis) {
			t.Fatalf("naive output lacks EIP on:\n%s", ic)
		}
		if !Check(ic, nv) {
			t.Fatalf("naive changed semantics on:\n%s", ic)
		}
		if !HasEmptyIntersectionProperty(ic, phis) {
			out := Smart(ic, phis)
			if out.Equal(ic) {
				t.Fatalf("instance lacks EIP but Smart was identity:\n%s", ic)
			}
		}
	}
}

func TestSmartIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	phis := randomPhis()
	for trial := 0; trial < 80; trial++ {
		ic := randomInstance(r, 1+r.Intn(8))
		once := Smart(ic, phis)
		twice := Smart(once, phis)
		if !twice.Equal(once) {
			t.Fatalf("Smart not idempotent on:\n%s\nonce:\n%s\ntwice:\n%s", ic, once, twice)
		}
	}
}

func TestSmartEmptyConjunction(t *testing.T) {
	// Regression: an empty conjunction in Φ+ has one (empty) homomorphism
	// with an empty fact set Δ; matchSets must skip it, not panic.
	ic := instance.NewConcrete(nil)
	ic.MustInsert(fact.NewC("R", paperex.Iv(0, 5), paperex.C("a")))
	out := Smart(ic, []logic.Conjunction{{}})
	if !out.Equal(ic) {
		t.Fatalf("empty conjunction must not fragment anything:\n%s", out)
	}
	if !HasEmptyIntersectionProperty(ic, []logic.Conjunction{{}}) {
		t.Fatal("empty conjunction trivially has the EIP")
	}
}
