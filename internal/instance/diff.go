package instance

import (
	"repro/internal/interval"
)

// Diff computes the semantic temporal difference a ∖ b: for every time
// point ℓ, the facts of ⟦a⟧(ℓ) that are not in ⟦b⟧(ℓ), returned as a
// coalesced concrete instance. Facts are compared by data values — for
// annotated nulls, by family — so a null fact is "covered" only by a
// fragment of the same family. The classic temporal-database difference
// with interval splitting.
func Diff(a, b *Concrete) *Concrete {
	// Interval coverage of b per data key.
	bCover := make(map[string]*interval.Set)
	for _, f := range b.Facts() {
		k := f.DataKey()
		s, ok := bCover[k]
		if !ok {
			s = &interval.Set{}
			bCover[k] = s
		}
		s.Add(f.T)
	}
	out := NewConcrete(a.Schema())
	for _, f := range a.Facts() {
		cover := bCover[f.DataKey()]
		if cover == nil {
			out.MustInsert(f)
			continue
		}
		var mine interval.Set
		mine.Add(f.T)
		rest := mine.Subtract(cover)
		for _, iv := range rest.Intervals() {
			out.MustInsert(f.WithInterval(iv))
		}
	}
	return out.Coalesce()
}

// SameSemantics reports whether two concrete instances denote the same
// abstract instance: both directions of Diff are empty.
func SameSemantics(a, b *Concrete) bool {
	return Diff(a, b).Len() == 0 && Diff(b, a).Len() == 0
}
