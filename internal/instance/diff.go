package instance

import (
	"repro/internal/fact"
	"repro/internal/interval"
	"repro/internal/schema"
)

// cover is the interval coverage of one data identity (relation + data
// arguments, nulls compared by family): a representative fact plus the
// union of the intervals of every fact sharing its data.
type cover struct {
	f   fact.CFact
	ivs interval.Set
}

// CoverIndex groups an instance's facts by data identity, bucketed on
// DataHash and confirmed with SameData (no canonical strings are ever
// built), in first-visited order so downstream output is deterministic.
// It is read-only once built and depends only on the instance's facts,
// so callers holding a frozen instance may build it once and reuse it
// across any number of DiffIndexed calls from any goroutine.
type CoverIndex struct {
	sch    *schema.Schema
	byHash map[uint64][]*cover
	order  []*cover
}

// NewCoverIndex builds the data-identity coverage index of c.
func NewCoverIndex(c *Concrete) *CoverIndex {
	ix := &CoverIndex{sch: c.Schema(), byHash: make(map[uint64][]*cover)}
	c.EachFact(func(f fact.CFact) bool {
		h := f.DataHash()
		for _, cv := range ix.byHash[h] {
			if cv.f.SameData(f) {
				cv.ivs.Add(f.T)
				return true
			}
		}
		cv := &cover{f: f}
		cv.ivs.Add(f.T)
		ix.byHash[h] = append(ix.byHash[h], cv)
		ix.order = append(ix.order, cv)
		return true
	})
	return ix
}

// lookup returns the coverage of f's data identity, or nil.
func (ix *CoverIndex) lookup(f fact.CFact) *interval.Set {
	for _, cv := range ix.byHash[f.DataHash()] {
		if cv.f.SameData(f) {
			return &cv.ivs
		}
	}
	return nil
}

// diffCovers emits a ∖ b from the two indexes: for every data identity
// of a, the part of its coverage b does not cover, as coalesced facts.
func diffCovers(a, b *CoverIndex) *Concrete {
	out := NewConcrete(a.sch)
	for _, cv := range a.order {
		rest := cv.ivs
		if cov := b.lookup(cv.f); cov != nil {
			rest = cv.ivs.Subtract(cov)
		}
		for _, iv := range rest.Intervals() {
			out.MustInsert(cv.f.WithInterval(iv))
		}
	}
	return out.Coalesce()
}

// Diff computes the semantic temporal difference a ∖ b: for every time
// point ℓ, the facts of ⟦a⟧(ℓ) that are not in ⟦b⟧(ℓ), returned as a
// coalesced concrete instance. Facts are compared by data values — for
// annotated nulls, by family — so a null fact is "covered" only by a
// fragment of the same family. The classic temporal-database difference
// with interval splitting.
func Diff(a, b *Concrete) *Concrete {
	return diffCovers(NewCoverIndex(a), NewCoverIndex(b))
}

// DiffBoth computes both directions of Diff in one pass over each
// instance — the coverage indexes are built once and shared, so it
// costs roughly half of two Diff calls. RunDelta's solution diffing is
// the hot caller.
func DiffBoth(a, b *Concrete) (aNotB, bNotA *Concrete) {
	return DiffIndexed(NewCoverIndex(a), NewCoverIndex(b))
}

// DiffIndexed is DiffBoth over prebuilt coverage indexes, for callers
// that hold frozen instances and amortize index construction across
// repeated diffs (a chain of incremental runs diffs each solution
// twice: once as the new side, once as the next delta's base).
func DiffIndexed(a, b *CoverIndex) (aNotB, bNotA *Concrete) {
	return diffCovers(a, b), diffCovers(b, a)
}

// SameSemantics reports whether two concrete instances denote the same
// abstract instance: both directions of Diff are empty.
func SameSemantics(a, b *Concrete) bool {
	d, r := DiffBoth(a, b)
	return d.Len() == 0 && r.Len() == 0
}
