package instance

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fact"
	"repro/internal/interval"
	"repro/internal/schema"
	"repro/internal/value"
)

func iv(s, e interval.Time) interval.Interval { return interval.MustNew(s, e) }
func cs(s string) value.Value                 { return value.NewConst(s) }

const inf = interval.Infinity

// figure4 builds the concrete source instance Ic of the paper's Figure 4.
func figure4(t testing.TB) *Concrete {
	sch := schema.MustNew(
		schema.MustRelation("E", "name", "company"),
		schema.MustRelation("S", "name", "salary"),
	)
	c := NewConcrete(sch)
	for _, f := range []fact.CFact{
		fact.NewC("E", iv(2012, 2014), cs("Ada"), cs("IBM")),
		fact.NewC("E", iv(2014, inf), cs("Ada"), cs("Google")),
		fact.NewC("E", iv(2013, 2018), cs("Bob"), cs("IBM")),
		fact.NewC("S", iv(2013, inf), cs("Ada"), cs("18k")),
		fact.NewC("S", iv(2015, inf), cs("Bob"), cs("13k")),
	} {
		if _, err := c.Insert(f); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestInsertValidation(t *testing.T) {
	c := figure4(t)
	if _, err := c.Insert(fact.NewC("Nope", iv(1, 2), cs("x"))); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := c.Insert(fact.NewC("E", iv(1, 2), cs("only-one-arg"))); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := c.Insert(fact.CFact{Rel: "E", Args: []value.Value{cs("a"), cs("b")}}); err == nil {
		t.Fatal("zero interval accepted")
	}
	added, err := c.Insert(fact.NewC("E", iv(2012, 2014), cs("Ada"), cs("IBM")))
	if err != nil || added {
		t.Fatal("duplicate should be accepted but not added")
	}
	if c.Len() != 5 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestSnapshotMatchesFigure1(t *testing.T) {
	// ⟦Ic⟧ at the paper's sampled years (Figure 1).
	c := figure4(t)
	tests := []struct {
		tp   interval.Time
		want string
	}{
		{2012, "{E(Ada, IBM)}"},
		{2013, "{E(Ada, IBM), E(Bob, IBM), S(Ada, 18k)}"},
		{2014, "{E(Ada, Google), E(Bob, IBM), S(Ada, 18k)}"},
		{2015, "{E(Ada, Google), E(Bob, IBM), S(Ada, 18k), S(Bob, 13k)}"},
		{2018, "{E(Ada, Google), S(Ada, 18k), S(Bob, 13k)}"},
		{2011, "{}"},
	}
	for _, tt := range tests {
		if got := c.Snapshot(tt.tp).String(); got != tt.want {
			t.Errorf("snapshot %v = %s want %s", tt.tp, got, tt.want)
		}
	}
}

func TestAbstractSegmentsAndSnapshots(t *testing.T) {
	c := figure4(t)
	a := c.Abstract()
	// Segments: [0,2012) [2012,2013) [2013,2014) [2014,2015) [2015,2018) [2018,inf)
	segs := a.Segments()
	if len(segs) != 6 {
		t.Fatalf("segments = %d: %v", len(segs), a.Cuts())
	}
	if segs[0].Iv != iv(0, 2012) || !segs[5].Iv.Unbounded() {
		t.Fatalf("segment bounds wrong: first %v last %v", segs[0].Iv, segs[5].Iv)
	}
	// Abstract snapshots agree with direct concrete projection everywhere.
	for tp := interval.Time(2010); tp < 2020; tp++ {
		if !a.Snapshot(tp).Equal(c.Snapshot(tp)) {
			t.Fatalf("snapshot mismatch at %v: %s vs %s", tp, a.Snapshot(tp), c.Snapshot(tp))
		}
	}
}

func TestAnnotatedNullProjection(t *testing.T) {
	// Emp(Bob, IBM, M^[2013,2015), [2013,2015)) from Figure 9: snapshots
	// 2013 and 2014 must hold distinct labeled nulls.
	c := NewConcrete(nil)
	m := value.NewAnnNull(42, iv(2013, 2015))
	c.MustInsert(fact.NewC("Emp", iv(2013, 2015), cs("Bob"), cs("IBM"), m))
	s13 := c.Snapshot(2013).Facts()
	s14 := c.Snapshot(2014).Facts()
	if len(s13) != 1 || len(s14) != 1 {
		t.Fatal("projection lost facts")
	}
	if s13[0].Args[2] == s14[0].Args[2] {
		t.Fatal("annotated null must project to distinct nulls per snapshot")
	}
	if c.Snapshot(2015).Len() != 0 {
		t.Fatal("fact leaked outside its interval")
	}
}

func TestIsCompleteAndIsCoalesced(t *testing.T) {
	c := figure4(t)
	if !c.IsComplete() {
		t.Fatal("source instance is complete")
	}
	if !c.IsCoalesced() {
		t.Fatal("figure 4 instance is coalesced")
	}
	c2 := c.Clone()
	c2.MustInsert(fact.NewC("E", iv(2014, 2016), cs("Ada"), cs("IBM"))) // adjacent to [2012,2014)
	if c2.IsCoalesced() {
		t.Fatal("adjacent same-data facts must break coalescedness")
	}
	var g value.NullGen
	c3 := NewConcrete(nil)
	c3.MustInsert(fact.NewC("R", iv(1, 2), g.FreshAnn(iv(1, 2))))
	if c3.IsComplete() {
		t.Fatal("instance with null reported complete")
	}
}

func TestCoalesceMergesFragments(t *testing.T) {
	// Fragment a fact, then coalesce: the original returns, with null
	// annotations restored.
	var g value.NullGen
	n := g.FreshAnn(iv(5, 11))
	orig := NewConcrete(nil)
	orig.MustInsert(fact.NewC("R", iv(5, 11), cs("a"), n))
	frag := NewConcrete(nil)
	for _, f := range orig.Facts()[0].Fragment([]interval.Time{7, 8, 10}) {
		frag.MustInsert(f)
	}
	if frag.Len() != 4 || frag.IsCoalesced() {
		t.Fatalf("fragmentation failed: %v", frag)
	}
	back := frag.Coalesce()
	if !back.Equal(orig) {
		t.Fatalf("coalesce did not restore original:\n%s\nvs\n%s", back, orig)
	}
	if !back.IsCoalesced() {
		t.Fatal("coalesced output not coalesced")
	}
}

func TestCoalesceKeepsDistinctFamiliesApart(t *testing.T) {
	// Adjacent facts whose nulls belong to different families must NOT
	// merge: they represent unrelated unknowns.
	var g value.NullGen
	c := NewConcrete(nil)
	c.MustInsert(fact.NewC("R", iv(1, 2), cs("a"), g.FreshAnn(iv(1, 2))))
	c.MustInsert(fact.NewC("R", iv(2, 3), cs("a"), g.FreshAnn(iv(2, 3))))
	out := c.Coalesce()
	if out.Len() != 2 {
		t.Fatalf("distinct null families merged: %s", out)
	}
	// But gaps also prevent merging for constants.
	d := NewConcrete(nil)
	d.MustInsert(fact.NewC("R", iv(1, 2), cs("a")))
	d.MustInsert(fact.NewC("R", iv(5, 6), cs("a")))
	if d.Coalesce().Len() != 2 {
		t.Fatal("gap-separated facts merged")
	}
}

func TestAbstractToConcreteRoundTrip(t *testing.T) {
	c := figure4(t)
	back, err := c.Abstract().ToConcrete()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(c.Coalesce()) {
		t.Fatalf("round trip changed instance:\n%s\nvs\n%s", back, c)
	}
}

func TestToConcreteRejectsSharedNulls(t *testing.T) {
	// J1 of Figure 2: the same labeled null in consecutive snapshots has
	// no concrete representation.
	n := value.NewNull(1)
	segs := []Segment{
		{Iv: iv(0, 2), Facts: []fact.CFact{{Rel: "Emp", Args: []value.Value{cs("Ada"), cs("IBM"), n}, T: iv(0, 2)}}},
		{Iv: iv(2, inf)},
	}
	a, err := NewAbstract(segs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.ToConcrete(); err == nil {
		t.Fatal("shared null must be rejected")
	}
}

func TestFigure2Instances(t *testing.T) {
	// J1: same null N across db0, db1. J2: per-snapshot nulls M1, M2.
	n := value.NewNull(1)
	j1, err := NewAbstract([]Segment{
		{Iv: iv(0, 2), Facts: []fact.CFact{{Rel: "Emp", Args: []value.Value{cs("Ada"), cs("IBM"), n}, T: iv(0, 2)}}},
		{Iv: iv(2, inf)},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := value.NewAnnNull(2, iv(0, 2))
	j2c := NewConcrete(nil)
	j2c.MustInsert(fact.NewC("Emp", iv(0, 2), cs("Ada"), cs("IBM"), m))
	j2 := j2c.Abstract()

	// J1's null is identical across snapshots; J2's are distinct.
	n0 := j1.Snapshot(0).Nulls()
	n1 := j1.Snapshot(1).Nulls()
	if len(n0) != 1 || len(n1) != 1 || n0[0] != n1[0] {
		t.Fatal("J1 must share one null across snapshots")
	}
	m0 := j2.Snapshot(0).Nulls()
	m1 := j2.Snapshot(1).Nulls()
	if len(m0) != 1 || len(m1) != 1 || m0[0] == m1[0] {
		t.Fatal("J2 must have distinct nulls per snapshot")
	}
	if j1.EqualTo(j2) {
		t.Fatal("J1 and J2 are different instances")
	}
	if !j1.EqualTo(j1) || !j2.EqualTo(j2) {
		t.Fatal("EqualTo must be reflexive")
	}
}

func TestNewAbstractValidation(t *testing.T) {
	if _, err := NewAbstract(nil); err == nil {
		t.Fatal("empty segment list accepted")
	}
	if _, err := NewAbstract([]Segment{{Iv: iv(1, inf)}}); err == nil {
		t.Fatal("segment not starting at 0 accepted")
	}
	if _, err := NewAbstract([]Segment{{Iv: iv(0, 5)}}); err == nil {
		t.Fatal("bounded last segment accepted")
	}
	if _, err := NewAbstract([]Segment{{Iv: iv(0, 5)}, {Iv: iv(6, inf)}}); err == nil {
		t.Fatal("gap between segments accepted")
	}
	if _, err := NewAbstract([]Segment{
		{Iv: iv(0, 5), Facts: []fact.CFact{fact.NewC("R", iv(0, 4), cs("a"))}},
		{Iv: iv(5, inf)},
	}); err == nil {
		t.Fatal("fact interval disagreeing with segment accepted")
	}
}

func TestRefinePreservesSnapshots(t *testing.T) {
	c := figure4(t)
	a := c.Abstract()
	r := a.Refine([]interval.Time{2013, 2016, 2030})
	for tp := interval.Time(2010); tp < 2035; tp += 1 {
		if !a.Snapshot(tp).Equal(r.Snapshot(tp)) {
			t.Fatalf("refine changed snapshot at %v", tp)
		}
	}
	if !a.EqualTo(r) || !r.EqualTo(a) {
		t.Fatal("refined instance must stay equal")
	}
}

func TestStringRenderings(t *testing.T) {
	c := figure4(t)
	s := c.String()
	if !strings.Contains(s, "E(Ada, IBM, [2012,2014))") {
		t.Fatalf("concrete String misses fact: %s", s)
	}
	a := c.Abstract().String()
	if !strings.Contains(a, "[2012,2013)") || !strings.Contains(a, "E(Ada, IBM)") {
		t.Fatalf("abstract String: %s", a)
	}
}

func TestQuickCoalescePreservesSemantics(t *testing.T) {
	// Random instances: coalescing never changes any snapshot, output is
	// coalesced, and coalescing is idempotent.
	r := rand.New(rand.NewSource(19))
	var g value.NullGen
	for trial := 0; trial < 300; trial++ {
		c := NewConcrete(nil)
		for i := 0; i < 1+r.Intn(12); i++ {
			s := interval.Time(r.Intn(15))
			e := s + 1 + interval.Time(r.Intn(10))
			t0 := iv(s, e)
			args := []value.Value{cs(string(rune('a' + r.Intn(3))))}
			if r.Intn(4) == 0 {
				args = append(args, g.FreshAnn(t0))
			} else {
				args = append(args, cs(string(rune('x'+r.Intn(2)))))
			}
			c.MustInsert(fact.NewC("R", t0, args...))
		}
		co := c.Coalesce()
		if !co.IsCoalesced() {
			t.Fatalf("output not coalesced:\n%s", co)
		}
		for tp := interval.Time(0); tp < 30; tp++ {
			if !c.Snapshot(tp).Equal(co.Snapshot(tp)) {
				t.Fatalf("coalesce changed snapshot %v:\n%s\nvs\n%s", tp, c, co)
			}
		}
		again := co.Coalesce()
		if !again.Equal(co) {
			t.Fatalf("coalesce not idempotent:\n%s\nvs\n%s", co, again)
		}
	}
}

func TestQuickAbstractRoundTrip(t *testing.T) {
	// Abstract → ToConcrete is the coalesced original on random complete
	// and annotated instances.
	r := rand.New(rand.NewSource(23))
	var g value.NullGen
	for trial := 0; trial < 200; trial++ {
		c := NewConcrete(nil)
		for i := 0; i < 1+r.Intn(8); i++ {
			s := interval.Time(r.Intn(12))
			var t0 interval.Interval
			if r.Intn(5) == 0 {
				t0 = interval.Interval{Start: s, End: inf}
			} else {
				t0 = iv(s, s+1+interval.Time(r.Intn(8)))
			}
			args := []value.Value{cs(string(rune('a' + r.Intn(3))))}
			if r.Intn(3) == 0 {
				args = append(args, g.FreshAnn(t0))
			} else {
				args = append(args, cs("k"))
			}
			c.MustInsert(fact.NewC("R", t0, args...))
		}
		back, err := c.Abstract().ToConcrete()
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(c.Coalesce()) {
			t.Fatalf("round trip mismatch:\n%s\nvs\n%s", back, c.Coalesce())
		}
	}
}

func TestDiffBasics(t *testing.T) {
	a := NewConcrete(nil)
	a.MustInsert(fact.NewC("E", iv(0, 10), cs("Ada"), cs("IBM")))
	a.MustInsert(fact.NewC("E", iv(0, 5), cs("Bob"), cs("X")))
	b := NewConcrete(nil)
	b.MustInsert(fact.NewC("E", iv(3, 7), cs("Ada"), cs("IBM")))
	d := Diff(a, b)
	// Ada-IBM survives on [0,3) and [7,10); Bob untouched.
	want := NewConcrete(nil)
	want.MustInsert(fact.NewC("E", iv(0, 3), cs("Ada"), cs("IBM")))
	want.MustInsert(fact.NewC("E", iv(7, 10), cs("Ada"), cs("IBM")))
	want.MustInsert(fact.NewC("E", iv(0, 5), cs("Bob"), cs("X")))
	if !d.Equal(want) {
		t.Fatalf("Diff =\n%s\nwant\n%s", d, want)
	}
	// Unbounded subtraction.
	c1 := NewConcrete(nil)
	c1.MustInsert(fact.NewC("E", interval.Interval{Start: 0, End: inf}, cs("x"), cs("y")))
	c2 := NewConcrete(nil)
	c2.MustInsert(fact.NewC("E", iv(5, 8), cs("x"), cs("y")))
	d2 := Diff(c1, c2)
	if d2.Len() != 2 || !d2.Contains(fact.NewC("E", interval.Interval{Start: 8, End: inf}, cs("x"), cs("y"))) {
		t.Fatalf("unbounded diff:\n%s", d2)
	}
}

func TestDiffNullFamilies(t *testing.T) {
	// A null fact is only covered by fragments of the same family.
	var g value.NullGen
	n := g.FreshAnn(iv(0, 6))
	m := g.FreshAnn(iv(2, 4))
	a := NewConcrete(nil)
	a.MustInsert(fact.NewC("R", iv(0, 6), cs("k"), n))
	sameFam := NewConcrete(nil)
	sameFam.MustInsert(fact.NewC("R", iv(2, 4), cs("k"), n.WithAnnotation(iv(2, 4))))
	otherFam := NewConcrete(nil)
	otherFam.MustInsert(fact.NewC("R", iv(2, 4), cs("k"), m))
	if got := Diff(a, sameFam); got.Len() != 2 {
		t.Fatalf("same family should subtract:\n%s", got)
	}
	if got := Diff(a, otherFam); got.Len() != 1 || !got.Contains(a.Facts()[0]) {
		t.Fatalf("different family must not subtract:\n%s", got)
	}
}

func TestSameSemantics(t *testing.T) {
	a := figure4(t)
	// Fragmenting does not change semantics.
	frag := NewConcrete(a.Schema())
	for _, f := range a.Facts() {
		for _, fr := range f.Fragment([]interval.Time{2013, 2015, 2016}) {
			frag.MustInsert(fr)
		}
	}
	if !SameSemantics(a, frag) {
		t.Fatal("fragmentation changed semantics")
	}
	b := a.Clone()
	b.MustInsert(fact.NewC("E", iv(1, 2), cs("zoe"), cs("Z")))
	if SameSemantics(a, b) {
		t.Fatal("different instances reported same")
	}
}

func TestQuickDiffSemantics(t *testing.T) {
	// Diff agrees with per-snapshot set difference on random instances.
	r := rand.New(rand.NewSource(97))
	for trial := 0; trial < 200; trial++ {
		mk := func() *Concrete {
			c := NewConcrete(nil)
			for i := 0; i < 1+r.Intn(6); i++ {
				s := interval.Time(r.Intn(10))
				c.MustInsert(fact.NewC("R", iv(s, s+1+interval.Time(r.Intn(6))),
					cs(string(rune('a'+r.Intn(2)))), cs(string(rune('x'+r.Intn(2))))))
			}
			return c
		}
		a, b := mk(), mk()
		d := Diff(a, b)
		for tp := interval.Time(0); tp < 20; tp++ {
			sa, sb, sd := a.Snapshot(tp), b.Snapshot(tp), d.Snapshot(tp)
			for _, f := range sa.Facts() {
				want := !sb.Contains(f)
				if got := sd.Contains(f); got != want {
					t.Fatalf("diff wrong at %v for %v: got %v want %v\na:\n%s\nb:\n%s", tp, f, got, want, a, b)
				}
			}
			if sd.Len() > sa.Len() {
				t.Fatal("diff invented facts")
			}
		}
	}
}
