// Package instance implements the two views of a temporal database
// (paper §2): the concrete view — a finite set of interval-timestamped
// facts — and the abstract view — conceptually an infinite sequence of
// snapshots ⟨db0, db1, ...⟩, represented finitely here as a sequence of
// segments justified by the finite change condition. The semantic map
// ⟦·⟧ connects the two, extended to interval-annotated nulls per §4.1.
package instance

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fact"
	"repro/internal/interval"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// Concrete is a concrete temporal database instance: per-relation sets of
// interval-timestamped facts. Internally facts are stored as tuples whose
// last component is the interval value, which is what lets the
// homomorphism engine treat the temporal attribute uniformly with data
// attributes (intervals behave as constants after normalization, §4.2).
type Concrete struct {
	sch *schema.Schema // may be nil: schemaless instances allowed
	st  *storage.Store
}

// NewConcrete returns an empty concrete instance over the given schema
// (nil for schemaless), with a fresh value interner.
func NewConcrete(sch *schema.Schema) *Concrete {
	return NewConcreteWith(sch, nil)
}

// NewConcreteWith returns an empty concrete instance sharing the given
// interner (fresh when nil). Instances derived from one another — a
// chase's source and target, normalization outputs, egd rewrites — share
// an interner so their stored rows stay ID-compatible and can be copied
// or substituted without re-interning.
func NewConcreteWith(sch *schema.Schema, in *value.Interner) *Concrete {
	return &Concrete{sch: sch, st: storage.NewStoreWith(in)}
}

// FromStore wraps an existing store as a concrete instance over sch —
// the bridge for the snapshot loader, whose stores arrive frozen and
// fully built. The caller is responsible for the store's rows matching
// the schema (fact arity + trailing interval column).
func FromStore(sch *schema.Schema, st *storage.Store) *Concrete {
	return &Concrete{sch: sch, st: st}
}

// Schema returns the instance's schema (possibly nil).
func (c *Concrete) Schema() *schema.Schema { return c.sch }

// Interner returns the value interner of the underlying store.
func (c *Concrete) Interner() *value.Interner { return c.st.Interner() }

// Store exposes the underlying tuple store for the homomorphism engine.
// Callers must not mutate it directly.
func (c *Concrete) Store() *storage.Store { return c.st }

// Freeze publishes the instance for concurrent reads: every lazy storage
// structure reads consult (posting lists, decoded tuples) is built
// eagerly and the underlying store flips to immutable — any number of
// goroutines may then match, snapshot, render, or clone the instance
// concurrently. Writes to a frozen instance panic. Idempotent; Clone
// returns a mutable copy.
func (c *Concrete) Freeze() { c.st.Freeze() }

// Frozen reports whether the instance has been frozen.
func (c *Concrete) Frozen() bool { return c.st.Frozen() }

// CheckRel validates a relation name and data arity against the
// instance's schema; a nil schema accepts everything. Insert applies it
// per fact; the chase's parallel merge path (which inserts interned rows
// directly) shares it so both paths report identical errors.
func (c *Concrete) CheckRel(rel string, arity int) error {
	if c.sch == nil {
		return nil
	}
	r, ok := c.sch.Relation(rel)
	if !ok {
		return fmt.Errorf("instance: unknown relation %s", rel)
	}
	if arity != r.Arity() {
		return fmt.Errorf("instance: %s expects %d data attributes, got %d", rel, r.Arity(), arity)
	}
	return nil
}

// Insert validates and adds a fact, reporting whether it was new.
func (c *Concrete) Insert(f fact.CFact) (bool, error) {
	if err := f.Validate(); err != nil {
		return false, err
	}
	if err := c.CheckRel(f.Rel, len(f.Args)); err != nil {
		return false, err
	}
	return c.st.Insert(f.Rel, ToTuple(f)), nil
}

// MustInsert is Insert but panics on error; for tests and examples.
func (c *Concrete) MustInsert(f fact.CFact) {
	if _, err := c.Insert(f); err != nil {
		panic(err)
	}
}

// InsertAll inserts a batch, stopping at the first error.
func (c *Concrete) InsertAll(fs []fact.CFact) error {
	for _, f := range fs {
		if _, err := c.Insert(f); err != nil {
			return err
		}
	}
	return nil
}

// ToTuple encodes a concrete fact as a stored tuple: data values followed
// by the interval value.
func ToTuple(f fact.CFact) []value.Value {
	tup := make([]value.Value, len(f.Args)+1)
	copy(tup, f.Args)
	tup[len(f.Args)] = value.NewInterval(f.T)
	return tup
}

// FromTuple decodes a stored tuple back into a concrete fact. It panics
// on tuples whose last component is not an interval, which indicates
// corruption.
func FromTuple(rel string, tup []value.Value) fact.CFact {
	n := len(tup) - 1
	iv, ok := tup[n].Interval()
	if !ok || tup[n].Kind() != value.IntervalVal {
		panic(fmt.Sprintf("instance: tuple of %s lacks interval tail: %v", rel, tup))
	}
	return fact.CFact{Rel: rel, Args: tup[:n:n], T: iv}
}

// FactAt returns the fact at the given storage row.
func (c *Concrete) FactAt(rel string, row int) fact.CFact {
	return FromTuple(rel, c.st.Rel(rel).Tuple(row))
}

// Len returns the number of facts.
func (c *Concrete) Len() int { return c.st.Size() }

// Relations returns the names of non-empty relations, sorted.
func (c *Concrete) Relations() []string { return c.st.Relations() }

// EachFact calls fn for every fact in store order (relations
// lexicographic, live rows ascending) — deterministic but unsorted,
// without materializing or sorting the fact set. Iteration stops early
// when fn returns false. Prefer this over Facts on hot paths that only
// need determinism.
func (c *Concrete) EachFact(fn func(f fact.CFact) bool) {
	c.st.Each(func(rel string, tup []value.Value) bool {
		return fn(FromTuple(rel, tup))
	})
}

// Facts returns every fact in deterministic order.
func (c *Concrete) Facts() []fact.CFact {
	out := make([]fact.CFact, 0, c.Len())
	c.st.Each(func(rel string, tup []value.Value) bool {
		out = append(out, FromTuple(rel, tup))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return fact.CompareC(out[i], out[j]) < 0 })
	return out
}

// FactsOf returns the facts of one relation in deterministic order.
func (c *Concrete) FactsOf(rel string) []fact.CFact {
	r := c.st.Rel(rel)
	if r == nil {
		return nil
	}
	out := make([]fact.CFact, 0, r.Len())
	r.EachLive(func(row int) bool {
		out = append(out, FromTuple(rel, r.Tuple(row)))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return fact.CompareC(out[i], out[j]) < 0 })
	return out
}

// Contains reports whether the instance holds the identical fact.
func (c *Concrete) Contains(f fact.CFact) bool {
	return c.st.Contains(f.Rel, ToTuple(f))
}

// Clone returns an independent copy sharing immutable tuples.
func (c *Concrete) Clone() *Concrete {
	return &Concrete{sch: c.sch, st: c.st.Clone()}
}

// IsComplete reports whether the instance is null-free (a complete
// instance in the paper's sense).
func (c *Concrete) IsComplete() bool {
	complete := true
	c.st.Each(func(rel string, tup []value.Value) bool {
		for _, v := range tup {
			if v.IsNullLike() {
				complete = false
				return false
			}
		}
		return true
	})
	return complete
}

// Endpoints returns the sorted distinct start/end points over all facts.
func (c *Concrete) Endpoints() []interval.Time {
	ivs := make([]interval.Interval, 0, c.Len())
	c.st.Each(func(rel string, tup []value.Value) bool {
		iv, _ := tup[len(tup)-1].Interval()
		ivs = append(ivs, iv)
		return true
	})
	return interval.Endpoints(ivs)
}

// Snapshot materializes the abstract snapshot db_tp = ⟦c⟧(tp): every fact
// whose interval contains tp, with interval-annotated nulls projected to
// per-snapshot labeled nulls (paper §4.1). The snapshot gets a private
// interner: projected per-timepoint nulls are snapshot-local, and
// interning them into the instance's long-lived interner would grow it
// by O(families × timepoints) across repeated snapshotting.
func (c *Concrete) Snapshot(tp interval.Time) *Snapshot {
	snap := NewSnapshot()
	c.st.Each(func(rel string, tup []value.Value) bool {
		cf := FromTuple(rel, tup)
		if f, ok := cf.Project(tp); ok {
			snap.Insert(f)
		}
		return true
	})
	return snap
}

// String renders the facts one per line, deterministically sorted.
func (c *Concrete) String() string {
	fs := c.Facts()
	lines := make([]string, len(fs))
	for i, f := range fs {
		lines[i] = f.String()
	}
	return strings.Join(lines, "\n")
}

// Equal reports whether two instances contain exactly the same facts.
func (c *Concrete) Equal(other *Concrete) bool {
	if c.Len() != other.Len() {
		return false
	}
	equal := true
	c.st.Each(func(rel string, tup []value.Value) bool {
		if !other.st.Contains(rel, tup) {
			equal = false
			return false
		}
		return true
	})
	return equal
}

// dataGroups groups the instance's facts by data identity — relation and
// data arguments, with annotated nulls compared by family (fact.SameData)
// — using fact.DataHash buckets instead of rendered string keys. Groups
// are returned in insertion order; each carries the intervals of its
// member facts in insertion order.
type dataGroup struct {
	proto fact.CFact
	ivs   []interval.Interval // one per fact, in insertion order
}

func (c *Concrete) dataGroups() []*dataGroup {
	buckets := make(map[uint64][]*dataGroup)
	var order []*dataGroup
	c.st.Each(func(rel string, tup []value.Value) bool {
		f := FromTuple(rel, tup)
		h := f.DataHash()
		var g *dataGroup
		for _, cand := range buckets[h] {
			if cand.proto.SameData(f) {
				g = cand
				break
			}
		}
		if g == nil {
			g = &dataGroup{proto: f}
			buckets[h] = append(buckets[h], g)
			order = append(order, g)
		}
		g.ivs = append(g.ivs, f.T)
		return true
	})
	return order
}

// IsCoalesced reports whether facts with identical data values have
// pairwise disjoint, non-adjacent intervals (paper §2).
func (c *Concrete) IsCoalesced() bool {
	for _, g := range c.dataGroups() {
		ivs := g.ivs
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].Compare(ivs[j]) < 0 })
		for i := 1; i < len(ivs); i++ {
			if ivs[i-1].Overlaps(ivs[i]) || ivs[i-1].Adjacent(ivs[i]) {
				return false
			}
		}
	}
	return true
}

// Coalesce returns the canonical coalesced equivalent: facts sharing data
// values (including the null family of annotated nulls) have their
// intervals merged into maximal disjoint intervals, re-annotating nulls
// accordingly. Coalescing is the inverse of fragmentation and preserves
// ⟦·⟧.
func (c *Concrete) Coalesce() *Concrete {
	out := NewConcreteWith(c.sch, c.Interner())
	for _, g := range c.dataGroups() {
		set := interval.NewSet(g.ivs...)
		for _, iv := range set.Intervals() {
			out.MustInsert(g.proto.WithInterval(iv))
		}
	}
	return out
}
