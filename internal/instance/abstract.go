package instance

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fact"
	"repro/internal/interval"
	"repro/internal/storage"
	"repro/internal/value"
)

// Snapshot is one state db_ℓ of the abstract view: a set of facts over
// constants and labeled nulls.
type Snapshot struct {
	st *storage.Store
}

// NewSnapshot returns an empty snapshot with a fresh value interner.
func NewSnapshot() *Snapshot { return NewSnapshotWith(nil) }

// NewSnapshotWith returns an empty snapshot sharing the given interner
// (fresh when nil); see NewConcreteWith for when sharing matters.
func NewSnapshotWith(in *value.Interner) *Snapshot {
	return &Snapshot{st: storage.NewStoreWith(in)}
}

// Interner returns the value interner of the underlying store.
func (s *Snapshot) Interner() *value.Interner { return s.st.Interner() }

// Insert adds a fact, reporting whether it was new.
func (s *Snapshot) Insert(f fact.Fact) bool { return s.st.Insert(f.Rel, f.Args) }

// Contains reports membership.
func (s *Snapshot) Contains(f fact.Fact) bool { return s.st.Contains(f.Rel, f.Args) }

// Len returns the number of facts.
func (s *Snapshot) Len() int { return s.st.Size() }

// Store exposes the tuple store for the homomorphism engine.
func (s *Snapshot) Store() *storage.Store { return s.st }

// FactAt returns the fact at the given storage row.
func (s *Snapshot) FactAt(rel string, row int) fact.Fact {
	return fact.Fact{Rel: rel, Args: s.st.Rel(rel).Tuple(row)}
}

// Facts returns all facts in deterministic order.
func (s *Snapshot) Facts() []fact.Fact {
	out := make([]fact.Fact, 0, s.Len())
	s.st.Each(func(rel string, tup []value.Value) bool {
		out = append(out, fact.Fact{Rel: rel, Args: tup})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return fact.Compare(out[i], out[j]) < 0 })
	return out
}

// Nulls returns the distinct labeled nulls occurring in the snapshot
// (the paper's Null(db)).
func (s *Snapshot) Nulls() []value.Value {
	seen := make(map[value.Value]bool)
	var out []value.Value
	s.st.Each(func(rel string, tup []value.Value) bool {
		for _, v := range tup {
			if v.Kind() == value.Null && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return value.Compare(out[i], out[j]) < 0 })
	return out
}

// Equal reports set equality of facts.
func (s *Snapshot) Equal(other *Snapshot) bool {
	if s.Len() != other.Len() {
		return false
	}
	eq := true
	s.st.Each(func(rel string, tup []value.Value) bool {
		if !other.st.Contains(rel, tup) {
			eq = false
			return false
		}
		return true
	})
	return eq
}

// Clone returns an independent copy.
func (s *Snapshot) Clone() *Snapshot { return &Snapshot{st: s.st.Clone()} }

// String renders the snapshot as {f1, f2, ...} in deterministic order.
func (s *Snapshot) String() string {
	fs := s.Facts()
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Segment is a maximal run of identical consecutive snapshots in the
// finite representation of an abstract instance. Facts carry the
// segment's interval; an interval-annotated null inside means the
// per-snapshot projections differ (paper §4.1), while a plain labeled
// null denotes the same null shared by every snapshot of the segment
// (needed to represent instances like J1 of Figure 2).
type Segment struct {
	Iv    interval.Interval
	Facts []fact.CFact
}

// Abstract is a finitely represented abstract temporal instance: a
// sequence of consecutive segments covering [0, ∞). The finite change
// condition (paper §2) guarantees every abstract instance of interest has
// this form. The zero value is not useful; build with NewAbstract or
// Concrete.Abstract.
type Abstract struct {
	segs []Segment
}

// NewAbstract builds an abstract instance from segments. Segments must be
// consecutive, start at 0, and end unbounded. Facts must carry the
// segment's interval.
func NewAbstract(segs []Segment) (*Abstract, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("instance: abstract instance needs at least one segment")
	}
	if segs[0].Iv.Start != 0 {
		return nil, fmt.Errorf("instance: first segment must start at 0, got %v", segs[0].Iv)
	}
	if !segs[len(segs)-1].Iv.Unbounded() {
		return nil, fmt.Errorf("instance: last segment must be unbounded, got %v", segs[len(segs)-1].Iv)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Iv.Start != segs[i-1].Iv.End {
			return nil, fmt.Errorf("instance: segments %v and %v are not consecutive", segs[i-1].Iv, segs[i].Iv)
		}
	}
	for _, sg := range segs {
		for _, f := range sg.Facts {
			if f.T != sg.Iv {
				return nil, fmt.Errorf("instance: fact %v disagrees with segment %v", f, sg.Iv)
			}
		}
	}
	return &Abstract{segs: segs}, nil
}

// Abstract computes ⟦c⟧: the abstract view of a concrete instance, cut at
// every endpoint occurring in the instance so that each segment is a
// maximal homogeneous run of snapshots.
func (c *Concrete) Abstract() *Abstract {
	eps := c.Endpoints()
	cuts := make([]interval.Time, 0, len(eps)+2)
	if len(eps) == 0 || eps[0] != 0 {
		cuts = append(cuts, 0)
	}
	for _, e := range eps {
		if e != interval.Infinity {
			cuts = append(cuts, e)
		}
	}
	segs := make([]Segment, 0, len(cuts))
	for i, s := range cuts {
		var iv interval.Interval
		if i+1 < len(cuts) {
			iv = interval.Interval{Start: s, End: cuts[i+1]}
		} else {
			iv = interval.Interval{Start: s, End: interval.Infinity}
		}
		seg := Segment{Iv: iv}
		for _, f := range c.Facts() {
			if f.T.ContainsInterval(iv) {
				seg.Facts = append(seg.Facts, f.WithInterval(iv))
			} else if f.T.Overlaps(iv) {
				// Cannot happen: iv is an atomic segment of the endpoint
				// partition, so every fact interval either covers it or
				// misses it.
				panic(fmt.Sprintf("instance: fact %v partially overlaps atomic segment %v", f, iv))
			}
		}
		segs = append(segs, seg)
	}
	a, err := NewAbstract(segs)
	if err != nil {
		panic(err) // construction above satisfies the invariants
	}
	return a
}

// Segments returns the segments in temporal order. The caller must not
// mutate them.
func (a *Abstract) Segments() []Segment { return a.segs }

// SegmentAt returns the segment covering time point tp.
func (a *Abstract) SegmentAt(tp interval.Time) Segment {
	i := sort.Search(len(a.segs), func(i int) bool { return a.segs[i].Iv.End > tp })
	return a.segs[i]
}

// Snapshot materializes db_tp by projecting the covering segment's facts.
func (a *Abstract) Snapshot(tp interval.Time) *Snapshot {
	seg := a.SegmentAt(tp)
	snap := NewSnapshot()
	for _, f := range seg.Facts {
		if af, ok := f.Project(tp); ok {
			snap.Insert(af)
		}
	}
	return snap
}

// Cuts returns the segment boundary time points (excluding 0 and ∞).
func (a *Abstract) Cuts() []interval.Time {
	var out []interval.Time
	for _, sg := range a.segs[1:] {
		out = append(out, sg.Iv.Start)
	}
	return out
}

// Refine splits segments at the given additional cut points, preserving
// semantics. Used to align two abstract instances on a common
// segmentation before comparing them.
func (a *Abstract) Refine(cuts []interval.Time) *Abstract {
	var segs []Segment
	for _, sg := range a.segs {
		pieces := sg.Iv.Fragment(cuts)
		for _, p := range pieces {
			ns := Segment{Iv: p}
			for _, f := range sg.Facts {
				ns.Facts = append(ns.Facts, f.WithInterval(p))
			}
			segs = append(segs, ns)
		}
	}
	out, err := NewAbstract(segs)
	if err != nil {
		panic(err)
	}
	return out
}

// SamplePoints returns one representative time point per segment of the
// common refinement of a and others — enough to decide any per-snapshot
// property of the instances, since snapshots within a segment are
// isomorphic copies of each other.
func SamplePoints(insts ...*Abstract) []interval.Time {
	cutSet := make(map[interval.Time]bool)
	for _, in := range insts {
		for _, t := range in.Cuts() {
			cutSet[t] = true
		}
	}
	cuts := make([]interval.Time, 0, len(cutSet)+1)
	cuts = append(cuts, 0)
	for t := range cutSet {
		cuts = append(cuts, t)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	return cuts
}

// EqualTo reports snapshot-wise equality with another abstract instance
// (same facts, same null identities, at every time point). Segments are
// aligned first; one representative point per aligned segment is checked,
// plus a second interior point to distinguish shared nulls from
// per-snapshot families.
func (a *Abstract) EqualTo(b *Abstract) bool {
	pts := SamplePoints(a, b)
	for _, tp := range pts {
		if !a.Snapshot(tp).Equal(b.Snapshot(tp)) {
			return false
		}
		// Second interior point of the covering segment, when available:
		// families project differently there, shared nulls do not.
		seg := a.SegmentAt(tp)
		if in := seg.Iv; in.Contains(tp + 1) {
			if !a.Snapshot(tp + 1).Equal(b.Snapshot(tp + 1)) {
				return false
			}
		}
	}
	return true
}

// String renders each segment's snapshot on one line.
func (a *Abstract) String() string {
	var b strings.Builder
	for i, sg := range a.segs {
		if i > 0 {
			b.WriteByte('\n')
		}
		snap := a.Snapshot(sg.Iv.Start)
		fmt.Fprintf(&b, "%v %s", sg.Iv, snap.String())
	}
	return b.String()
}

// ToConcrete converts the abstract instance back to a coalesced concrete
// instance. It fails when a segment contains a plain shared labeled null,
// which the concrete view cannot represent (interval-annotated nulls
// denote per-snapshot distinct nulls, §4.1).
func (a *Abstract) ToConcrete() (*Concrete, error) {
	out := NewConcrete(nil)
	for _, sg := range a.segs {
		for _, f := range sg.Facts {
			for _, v := range f.Args {
				if v.Kind() == value.Null {
					return nil, fmt.Errorf("instance: shared null %v has no concrete representation", v)
				}
			}
			if _, err := out.Insert(f); err != nil {
				return nil, err
			}
		}
	}
	return out.Coalesce(), nil
}
