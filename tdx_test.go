package tdx

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestCompileOnceRunConcurrently is the compile-once/run-many contract:
// one compiled Exchange shared by many goroutines, each chasing its own
// source instance, must race-cleanly (run under -race in CI) produce the
// same solution as a sequential run.
func TestCompileOnceRunConcurrently(t *testing.T) {
	ctx := context.Background()
	ex := compileTestdata(t, "employment.tdx")
	facts := readTestdata(t, "employment.facts")

	ref, err := ex.ParseSource(facts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ex.Run(ctx, ref)
	if err != nil {
		t.Fatal(err)
	}
	// Compare via the rendered form: an Instance is not safe for
	// concurrent use (even reads fill lazy caches), so goroutines must
	// not probe the shared reference instance directly.
	wantStr := want.String()

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine parses its own source: instances are
			// per-run, the Exchange (and its interner) is shared.
			src, err := ex.ParseSource(facts)
			if err != nil {
				errs[g] = err
				return
			}
			sol, err := ex.Run(ctx, src)
			if err != nil {
				errs[g] = err
				return
			}
			if got := sol.String(); got != wantStr {
				errs[g] = errors.New("concurrent solution differs from sequential reference:\n" + got)
				return
			}
			ans, err := ex.Query(ctx, sol, "q")
			if err != nil {
				errs[g] = err
				return
			}
			if ans.Len() != 2 {
				errs[g] = errors.New("concurrent answers wrong:\n" + ans.String())
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// slowExchange returns an exchange and source big enough that a full run
// takes tens of milliseconds — room to cancel mid-flight.
func slowExchange(t *testing.T) (*Exchange, *Instance) {
	t.Helper()
	ex, err := FromMapping(workload.EgdStressMapping(8))
	if err != nil {
		t.Fatal(err)
	}
	return ex, NewInstance(workload.EgdStress(120, 8))
}

// TestRunCanceledBeforeStart: an already-canceled context fails
// immediately with context.Canceled, before any chase work.
func TestRunCanceledBeforeStart(t *testing.T) {
	ex, src := slowExchange(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ex.Run(ctx, src); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on canceled ctx: %v", err)
	}
}

// TestRunCanceledMidChase cancels a deliberately slow chase mid-run: Run
// must return context.Canceled promptly and the caller's source instance
// must be unmutated.
func TestRunCanceledMidChase(t *testing.T) {
	ex, src := slowExchange(t)
	before := src.Clone()

	// Calibrate: a full run takes this long uncanceled.
	full := time.Now()
	if _, err := ex.Run(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	fullDur := time.Since(full)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := ex.Run(ctx, src)
		done <- err
	}()
	// Cancel while the chase is in flight (a fraction of the full run).
	time.Sleep(fullDur / 10)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return promptly after cancellation")
	}
	elapsed := time.Since(start)
	// "Promptly": the canceled run must not take as long as a full run
	// would. Generous bound to stay robust on loaded CI machines.
	if elapsed > fullDur*2+time.Second {
		t.Fatalf("canceled run took %v (full run: %v)", elapsed, fullDur)
	}
	if !src.Equal(before) {
		t.Fatal("cancellation mutated the caller's source instance")
	}
}

// TestRunDeadline: a deadline in the past behaves like cancellation with
// context.DeadlineExceeded.
func TestRunDeadline(t *testing.T) {
	ex, src := slowExchange(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	if _, err := ex.Run(ctx, src); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run past deadline: %v", err)
	}
}

// TestQueryAndAnswerCanceled: the query surfaces respect cancellation
// too (their normalization and evaluation loops check the context).
func TestQueryAndAnswerCanceled(t *testing.T) {
	ex := compileTestdata(t, "employment.tdx")
	src, err := ex.ParseSource(readTestdata(t, "employment.facts"))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := ex.Run(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ex.Query(ctx, sol, "q"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Query on canceled ctx: %v", err)
	}
	if _, err := ex.Answer(ctx, src, "q"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Answer on canceled ctx: %v", err)
	}
	if _, err := ex.Normalize(ctx, src); !errors.Is(err, context.Canceled) {
		t.Fatalf("Normalize on canceled ctx: %v", err)
	}
	if _, err := ex.Snapshot(ctx, sol, 2013); !errors.Is(err, context.Canceled) {
		t.Fatalf("Snapshot on canceled ctx: %v", err)
	}
	if _, _, err := ex.RunAbstract(ctx, src); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAbstract on canceled ctx: %v", err)
	}
}

// TestNilContextMeansBackground: a nil ctx is tolerated and never
// cancels.
func TestNilContextMeansBackground(t *testing.T) {
	ex := compileTestdata(t, "employment.tdx")
	src, err := ex.ParseSource(readTestdata(t, "employment.facts"))
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore SA1012 deliberate: the API tolerates nil contexts.
	sol, err := ex.Run(nil, src) //nolint:staticcheck
	if err != nil || sol.Len() != 5 {
		t.Fatalf("nil-ctx Run: %v", err)
	}
}

// TestCompileErrors: compile-time validation catches bad mappings and
// bad queries once, not at run time.
func TestCompileErrors(t *testing.T) {
	for name, text := range map[string]string{
		"parse error":   "source schema {",
		"malformed egd": "source schema { A(x) }\ntarget schema { B(x) }\negd e: B(x) -> x = y\n",
		"bad query": "source schema { A(x) }\ntarget schema { B(x) }\n" +
			"tgd t1: A(x) -> B(x)\nquery q(z) :- Missing(z)\n",
	} {
		if _, err := Compile(text); err == nil {
			t.Errorf("%s: Compile accepted\n%s", name, text)
		}
	}
	if _, err := FromMapping(nil); err == nil {
		t.Error("FromMapping(nil) accepted")
	}
	if _, err := FromTemporalMapping(nil); err == nil {
		t.Error("FromTemporalMapping(nil) accepted")
	}
}

// TestQueryLookup exercises the three addressing modes and their errors.
func TestQueryLookup(t *testing.T) {
	ctx := context.Background()
	ex := compileTestdata(t, "employment.tdx")
	src, err := ex.ParseSource(readTestdata(t, "employment.facts"))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := ex.Run(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	// "" resolves to the single declared query.
	byDefault, err := ex.Query(ctx, sol, "")
	if err != nil {
		t.Fatal(err)
	}
	byName, err := ex.Query(ctx, sol, "q")
	if err != nil || !byName.Equal(byDefault) {
		t.Fatalf("by-name: %v", err)
	}
	inline, err := ex.Query(ctx, sol, "query q(n, s) :- Emp(n, c, s)")
	if err != nil || !inline.Equal(byDefault) {
		t.Fatalf("inline: %v\n%s\nvs\n%s", err, inline, byDefault)
	}
	if _, err := ex.Query(ctx, sol, "nope"); err == nil || !strings.Contains(err.Error(), "no query named") {
		t.Fatalf("unknown name: %v", err)
	}
	if _, err := ex.Query(ctx, sol, "query bad(z) :- Missing(z)"); err == nil {
		t.Fatalf("invalid inline query accepted")
	}
}

// TestWithTraceAndStats: the trace hook sees the chase's events and the
// stats surface matches.
func TestWithTraceAndStats(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	ex := compileTestdata(t, "employment.tdx", WithTrace(func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}))
	src, err := ex.ParseSource(readTestdata(t, "employment.facts"))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := ex.Run(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	st := sol.Stats()
	if st.TGDFires == 0 || st.EgdMerges == 0 {
		t.Fatalf("stats: %+v", st)
	}
	kinds := map[string]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	if kinds["normalize"] == 0 || kinds["tgd-fire"] != st.TGDFires || kinds["egd-merge"] != st.EgdMerges {
		t.Fatalf("trace kinds %v vs stats %+v", kinds, st)
	}
}

// TestCoalesceOption: WithCoalesce at compile time and per run.
func TestCoalesceOption(t *testing.T) {
	ctx := context.Background()
	ex := compileTestdata(t, "employment.tdx", WithCoalesce(true))
	src, err := ex.ParseSource(readTestdata(t, "employment.facts"))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := ex.Run(ctx, src)
	if err != nil || !sol.IsCoalesced() {
		t.Fatalf("compile-time coalesce: %v, coalesced=%v", err, sol.IsCoalesced())
	}
	// Per-run override wins.
	raw, err := ex.Run(ctx, src, WithCoalesce(false))
	if err != nil {
		t.Fatal(err)
	}
	if !raw.Coalesce().Equal(&sol.Instance) {
		t.Fatal("per-run override diverged from compile-time coalescing")
	}
}
