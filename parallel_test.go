package tdx

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// gradMapping is a synthetic §7 modal mapping large enough to engage
// the parallel egd phase (the shipped phd.tdx solution has two facts —
// far below the cutoff): every graduation record asserts a past
// candidacy in its department with an existential adviser, and the
// adviser key merges the fresh nulls across a person's departments.
// The ◆-witness of [s, e) is the point [s−1, s), so records of one
// person share a start time to make their candidacy witnesses
// coincide — that is where the egd joins.
const gradMapping = `
source schema {
    Grad(name, dept)
}
target schema {
    Cand(name, dept, adviser)
    OnRecord(name, dept)
}
tgd was-candidate: Grad(n, d) -> exists a . past Cand(n, d, a)
tgd on-record:    Grad(n, d) -> OnRecord(n, d)
egd adviser-key:  Cand(n, d1, a), Cand(n, d2, b) -> a = b
`

// gradFacts generates persons×records graduation facts: per person all
// records start together (aligning the past-candidacy witnesses) and
// end at staggered times.
func gradFacts(persons, records int) string {
	var b strings.Builder
	for p := 0; p < persons; p++ {
		start := 2 + p%5
		for r := 0; r < records; r++ {
			fmt.Fprintf(&b, "Grad(p%d, d%d) @ [%d, %d)\n", p, r, start, start+2+3*r)
		}
	}
	return b.String()
}

// TestParallelTemporalLockstep runs the synthetic §7 mapping through
// the public API at several parallelism settings: the temporal chase's
// egd phase must engage the parallel path and stay byte-identical to
// the sequential run.
func TestParallelTemporalLockstep(t *testing.T) {
	ctx := context.Background()
	ex, err := Compile(gradMapping)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Info().Temporal {
		t.Fatal("gradMapping should compile as a temporal mapping")
	}
	src, err := ex.ParseSource(gradFacts(60, 3))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ex.Run(ctx, src, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	seqStats := seq.Stats()
	if seqStats.EgdWorkers != 1 {
		t.Fatalf("sequential temporal run reports EgdWorkers = %d", seqStats.EgdWorkers)
	}
	if seqStats.EgdMerges == 0 {
		t.Fatal("workload produced no egd merges; the lockstep proves nothing")
	}
	want := seq.Facts()
	for _, workers := range []int{2, 4, 8} {
		par, err := ex.Run(ctx, src, WithParallelism(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		parStats := par.Stats()
		if parStats.EgdWorkers != workers {
			t.Fatalf("workers=%d: parallel egd phase did not engage (EgdWorkers=%d; target too small for the cutoff?)", workers, parStats.EgdWorkers)
		}
		if got := par.Facts(); got != want {
			t.Fatalf("workers=%d: temporal solution differs from sequential\nseq:\n%s\npar:\n%s", workers, want, got)
		}
		seqCmp, parCmp := seqStats, parStats
		seqCmp.TGDWorkers, parCmp.TGDWorkers = 0, 0
		seqCmp.EgdWorkers, parCmp.EgdWorkers = 0, 0
		if seqCmp != parCmp {
			t.Fatalf("workers=%d: stats differ:\nseq: %+v\npar: %+v", workers, seqStats, parStats)
		}
		for _, at := range []Time{1, 4, 8} {
			a, err := ex.Snapshot(ctx, seq, at)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ex.Snapshot(ctx, par, at)
			if err != nil {
				t.Fatal(err)
			}
			if a.String() != b.String() {
				t.Fatalf("workers=%d: snapshot at %d differs:\n%s\nvs\n%s", workers, at, a, b)
			}
		}
	}
}

// TestParallelQueryLockstep pins Query's parallel per-disjunct
// normalization: the same frozen solution queried through a sequential
// and a parallel exchange must give byte-identical certain answers.
func TestParallelQueryLockstep(t *testing.T) {
	ctx := context.Background()
	text := readTestdata(t, "employment.tdx")
	seqEx, err := Compile(text, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parEx, err := Compile(text, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	src, err := seqEx.ParseSource(readTestdata(t, "employment.facts"))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := seqEx.Run(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	// Run freezes the solution, so the parallel exchange's Query fans its
	// normalization out over it — answers must not change.
	for _, q := range []string{"q", "query all(n, c) :- Emp(n, c, s)"} {
		a, err := seqEx.Query(ctx, sol, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parEx.Query(ctx, sol, q)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) || a.Facts() != b.Facts() {
			t.Fatalf("query %q: answers differ across parallelism:\n%s\nvs\n%s", q, a, b)
		}
	}
}
